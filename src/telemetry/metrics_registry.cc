#include "telemetry/metrics_registry.hh"

#include "common/prism_assert.hh"

namespace prism::telemetry
{

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()),
      buckets_(bounds.size() + 1)
{
    for (std::size_t i = 1; i < bounds_.size(); ++i)
        panicIf(bounds_[i] <= bounds_[i - 1],
                "Histogram: bounds must be strictly ascending");
}

void
Histogram::observe(double v)
{
    std::size_t bucket = bounds_.size(); // overflow by default
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
        if (v <= bounds_[i]) {
            bucket = i;
            break;
        }
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
}

double
Histogram::quantile(double q) const
{
    const std::uint64_t total = count();
    if (total == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    else if (q > 1.0)
        q = 1.0;

    // Rank of the target observation (1-based); walk cumulative
    // bucket counts until it is covered.
    const double rank = q * static_cast<double>(total);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
        const std::uint64_t in_bucket = bucketCount(i);
        if (in_bucket == 0)
            continue;
        const std::uint64_t below = cumulative;
        cumulative += in_bucket;
        if (rank > static_cast<double>(cumulative))
            continue;
        const double lo = i == 0 ? 0.0 : bounds_[i - 1];
        const double hi = bounds_[i];
        const double frac =
            (rank - static_cast<double>(below)) /
            static_cast<double>(in_bucket);
        return lo + (hi - lo) * (frac < 0.0 ? 0.0 : frac);
    }
    // Overflow bucket: the histogram cannot resolve past the last
    // bound, so saturate there.
    return bounds_.empty() ? 0.0 : bounds_.back();
}

std::vector<double>
Histogram::exponentialBounds(double first, double factor,
                             std::size_t count)
{
    panicIf(first <= 0.0 || factor <= 1.0 || count == 0,
            "exponentialBounds: need first > 0, factor > 1, count > 0");
    std::vector<double> bounds;
    bounds.reserve(count);
    double bound = first;
    for (std::size_t i = 0; i < count; ++i) {
        bounds.push_back(bound);
        bound *= factor;
    }
    return bounds;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::span<const double> bounds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>(bounds);
    return *slot;
}

SpanStats
MetricsRegistry::span(const std::string &name)
{
    return SpanStats{&counter(name + ".calls"),
                     &counter(name + ".wall_ns")};
}

bool
MetricsRegistry::isWallClock(std::string_view name)
{
    constexpr std::string_view suffix = ".wall_ns";
    return name.size() >= suffix.size() &&
           name.substr(name.size() - suffix.size()) == suffix;
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::counterValues() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto &[name, c] : counters_)
        out.emplace_back(name, c->value());
    return out;
}

void
MetricsRegistry::visit(
    const std::function<void(const std::string &, const Counter &)>
        &counter_fn,
    const std::function<void(const std::string &, const Gauge &)>
        &gauge_fn,
    const std::function<void(const std::string &, const Histogram &)>
        &histogram_fn,
    bool include_wall) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (counter_fn)
        for (const auto &[name, c] : counters_) {
            if (!include_wall && isWallClock(name))
                continue;
            counter_fn(name, *c);
        }
    if (gauge_fn)
        for (const auto &[name, g] : gauges_)
            gauge_fn(name, *g);
    if (histogram_fn)
        for (const auto &[name, h] : histograms_)
            histogram_fn(name, *h);
}

void
MetricsRegistry::writeJson(JsonWriter &w, bool include_wall) const
{
    std::lock_guard<std::mutex> lock(mutex_);

    w.beginObject();

    w.key("counters");
    w.beginObject();
    for (const auto &[name, c] : counters_) {
        if (!include_wall && isWallClock(name))
            continue;
        w.kv(name, c->value());
    }
    w.endObject();

    w.key("gauges");
    w.beginObject();
    for (const auto &[name, g] : gauges_)
        w.kv(name, g->value());
    w.endObject();

    w.key("histograms");
    w.beginObject();
    for (const auto &[name, h] : histograms_) {
        w.key(name);
        w.beginObject();
        w.kv("bounds", std::span<const double>(h->bounds()));
        std::vector<std::uint64_t> buckets(h->numBuckets());
        for (std::size_t i = 0; i < buckets.size(); ++i)
            buckets[i] = h->bucketCount(i);
        w.kv("buckets", std::span<const std::uint64_t>(buckets));
        w.kv("count", h->count());
        w.kv("sum", h->sum());
        w.endObject();
    }
    w.endObject();

    w.endObject();
}

} // namespace prism::telemetry
