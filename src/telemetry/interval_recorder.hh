/**
 * @file
 * Per-interval time-series recorder for the PriSM control loop.
 *
 * PriSM's behaviour is temporal: the paper's diagnostics are
 * per-interval trajectories of occupancy C_i, targets T_i, eviction
 * probabilities E_i and misses M_i (Figures 4 and 11). The recorder
 * captures one IntervalSample per allocation interval — plus a
 * stream of instant TelemetryEvents (core completions, degraded
 * intervals, repairs) — into bounded ring buffers with
 * oldest-dropped semantics and drop counters.
 *
 * The recorder is single-writer (one simulation thread); in sweeps
 * each job owns its own recorder, so no synchronisation is needed
 * and the recorded series is deterministic at any thread count.
 */

#ifndef PRISM_TELEMETRY_INTERVAL_RECORDER_HH
#define PRISM_TELEMETRY_INTERVAL_RECORDER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace prism::telemetry
{

class MetricsRegistry;

/** Run-level telemetry knobs, carried on SchemeOptions. */
struct TelemetryConfig
{
    /** Master switch; off = no recorder, no samples, no spans. */
    bool enabled = false;

    /** Ring-buffer capacity in intervals (and in events). */
    std::size_t capacity = 4096;

    /**
     * Span/metric sink (non-owning; may be null). Safe to share
     * between concurrent sweep jobs — MetricsRegistry is
     * thread-safe and spans aggregate commutatively.
     */
    MetricsRegistry *metrics = nullptr;
};

/** One interval boundary's per-core state. */
struct IntervalSample
{
    /** 1-based interval index (matches SharedCache::intervals()). */
    std::uint64_t interval = 0;

    /** Misses in this interval (W, barring the final partial one). */
    std::uint64_t missesInInterval = 0;

    // Per-core series; indexed by CoreId.
    std::vector<double> occupancy; ///< C_i as a fraction of blocks
    std::vector<double> missFrac;  ///< M_i within the interval
    std::vector<double> ipc;       ///< interval IPC (0 without timing)
    std::vector<std::uint64_t> hits;
    std::vector<std::uint64_t> misses;

    // PriSM-only series; empty under other schemes.
    std::vector<double> target; ///< T_i from the allocation policy
    std::vector<double> evProb; ///< E_i after quantisation/repair
};

/** Kinds of instant events the trace can carry. */
enum class EventKind
{
    CoreFinish,         ///< a core crossed its instruction budget
    DegradedInterval,   ///< PriSM served an interval degraded
    DroppedRecompute,   ///< an injected fault lost the recompute
    DistributionRepair, ///< auditor clamped/renormalised E
    FallbackEntered,    ///< E unrecoverable; repl policy serves
    OwnershipRepair,    ///< cache occupancy counters were repaired

    // Exec-layer events (sweep supervision): the interval index
    // carries the 1-based job spec index, the value the attempt.
    JobRetry,      ///< a failed attempt was retried
    JobTimeout,    ///< an attempt hit the deadline watchdog
    JobQuarantine, ///< the job exhausted its attempts

    // Online-doctor events (live observability plane): a check
    // escalated at this interval; the value is the finding's
    // measured statistic.
    DoctorWarn, ///< a live check crossed its WARN threshold
    DoctorFail, ///< a live check crossed its FAIL threshold
};

const char *eventKindName(EventKind kind);

/** One instant event, anchored to an interval index. */
struct TelemetryEvent
{
    EventKind kind = EventKind::DegradedInterval;
    /** 1-based interval the event belongs to. */
    std::uint64_t interval = 0;
    /** Affected core, or invalidCore for whole-cache events. */
    CoreId core = invalidCore;
    /** Kind-specific payload (e.g. occupancy at finish). */
    double value = 0.0;
};

/** Bounded ring of interval samples plus a ring of instant events. */
class IntervalRecorder
{
  public:
    /** @param capacity Samples (and events) retained; at least 1. */
    explicit IntervalRecorder(std::size_t capacity);

    IntervalRecorder(const IntervalRecorder &) = delete;
    IntervalRecorder &operator=(const IntervalRecorder &) = delete;

    std::size_t capacity() const { return capacity_; }

    /** Append @p sample, dropping the oldest retained one when full. */
    void record(IntervalSample sample);

    /** Retained samples (<= capacity). */
    std::size_t size() const { return ring_.size(); }

    /** Samples ever recorded, including dropped ones. */
    std::uint64_t recorded() const { return recorded_; }

    std::uint64_t
    droppedSamples() const
    {
        return recorded_ - ring_.size();
    }

    /** Retained sample @p i, 0 = oldest retained. */
    const IntervalSample &sample(std::size_t i) const;

    /** Append @p event, dropping the oldest retained one when full. */
    void addEvent(const TelemetryEvent &event);

    std::size_t eventCount() const { return events_.size(); }
    std::uint64_t eventsSeen() const { return events_seen_; }

    std::uint64_t
    droppedEvents() const
    {
        return events_seen_ - events_.size();
    }

    /** Retained event @p i, 0 = oldest retained. */
    const TelemetryEvent &event(std::size_t i) const;

  private:
    std::size_t capacity_;

    std::vector<IntervalSample> ring_; ///< grows to capacity_, then wraps
    std::size_t head_ = 0;             ///< next write position once full
    std::uint64_t recorded_ = 0;

    std::vector<TelemetryEvent> events_;
    std::size_t events_head_ = 0;
    std::uint64_t events_seen_ = 0;
};

/**
 * Occupancy fraction carried by @p core's CoreFinish event — the
 * figure 4 statistic; 0 when the event was not recorded (dropped or
 * the run did not finish).
 */
double finishOccupancy(const IntervalRecorder &recorder, CoreId core);

/**
 * Welford statistics over the recorded E_i series of @p core — the
 * figure 11 statistic. With no dropped samples this replays exactly
 * the sequence PrismScheme::probStat accumulates, so mean and
 * stddev match bit for bit.
 */
RunningStat evProbStat(const IntervalRecorder &recorder, CoreId core);

} // namespace prism::telemetry

#endif // PRISM_TELEMETRY_INTERVAL_RECORDER_HH
