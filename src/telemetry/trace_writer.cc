#include "telemetry/trace_writer.hh"

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hh"
#include "common/prism_assert.hh"

namespace prism::telemetry
{

namespace
{

/** Trace-time position of an interval: 1 interval == 1000 µs. */
std::uint64_t
intervalTs(std::uint64_t interval)
{
    return interval * 1000;
}

/**
 * RFC 4180 CSV field: quoted (with inner quotes doubled) only when
 * the value contains a comma, quote or line break, so the common
 * case — plain job names — stays byte-identical to before.
 */
std::string
csvField(std::string_view v)
{
    const bool needs_quoting =
        v.find_first_of(",\"\n\r") != std::string_view::npos;
    if (!needs_quoting)
        return std::string(v);
    std::string out;
    out.reserve(v.size() + 2);
    out.push_back('"');
    for (const char c : v) {
        if (c == '"')
            out.push_back('"');
        out.push_back(c);
    }
    out.push_back('"');
    return out;
}

void
beginEvent(JsonWriter &w, std::string_view name, std::string_view ph,
           std::uint64_t pid, std::uint64_t ts)
{
    w.beginObject();
    w.kv("name", name);
    w.kv("ph", ph);
    w.kv("pid", pid);
    w.kv("tid", std::uint64_t{0});
    w.kv("ts", ts);
}

void
writeProcessName(JsonWriter &w, std::uint64_t pid,
                 const std::string &name)
{
    w.beginObject();
    w.kv("name", "process_name");
    w.kv("ph", "M");
    w.kv("pid", pid);
    w.kv("tid", std::uint64_t{0});
    w.key("args");
    w.beginObject();
    w.kv("name", name);
    w.endObject();
    w.endObject();
}

template <typename T>
void
writeCounterEvent(JsonWriter &w, std::string_view name,
                  std::uint64_t pid, std::uint64_t ts,
                  const std::vector<T> &per_core)
{
    beginEvent(w, name, "C", pid, ts);
    w.key("args");
    w.beginObject();
    for (std::size_t c = 0; c < per_core.size(); ++c)
        w.kv("c" + std::to_string(c), per_core[c]);
    w.endObject();
    w.endObject();
}

void
writeInstantEvent(JsonWriter &w, std::uint64_t pid,
                  const TelemetryEvent &ev)
{
    beginEvent(w, eventKindName(ev.kind), "i", pid,
               intervalTs(ev.interval));
    w.kv("s", "p"); // process-scoped flow marker
    w.key("args");
    w.beginObject();
    if (ev.core != invalidCore)
        w.kv("core", static_cast<std::uint64_t>(ev.core));
    w.kv("value", ev.value);
    w.endObject();
    w.endObject();
}

/**
 * Aggregated wall-clock span rows ("llc.access" → calls, wall ns),
 * reconstructed from the "<name>.calls"/"<name>.wall_ns" counter
 * pairs MetricsRegistry::span registers.
 */
std::vector<std::pair<std::string, std::pair<std::uint64_t, std::uint64_t>>>
spanAggregates(const MetricsRegistry &metrics)
{
    constexpr std::string_view calls_suffix = ".calls";
    const auto counters = metrics.counterValues();

    std::vector<std::pair<std::string,
                          std::pair<std::uint64_t, std::uint64_t>>>
        out;
    for (const auto &[name, value] : counters) {
        if (name.size() <= calls_suffix.size() ||
            name.substr(name.size() - calls_suffix.size()) !=
                calls_suffix)
            continue;
        const std::string base =
            name.substr(0, name.size() - calls_suffix.size());
        std::uint64_t wall = 0;
        bool has_wall = false;
        for (const auto &[other, v] : counters) {
            if (other == base + ".wall_ns") {
                wall = v;
                has_wall = true;
                break;
            }
        }
        if (has_wall)
            out.emplace_back(base, std::make_pair(value, wall));
    }
    return out;
}

} // namespace

void
TraceWriter::writeChromeTrace(std::ostream &os,
                              std::span<const TraceJob> jobs,
                              const MetricsRegistry *metrics) const
{
    JsonWriter w(os);
    w.beginObject();
    w.kv("displayTimeUnit", "ms");

    std::uint64_t dropped_samples = 0;
    std::uint64_t dropped_events = 0;
    for (const TraceJob &job : jobs) {
        panicIf(!job.recorder, "TraceWriter: job without recorder");
        dropped_samples += job.recorder->droppedSamples();
        dropped_events += job.recorder->droppedEvents();
    }

    w.key("otherData");
    w.beginObject();
    w.kv("schema", "prism-trace-v1");
    w.kv("time_base", "1 allocation interval == 1ms of trace time");
    w.kv("jobs", static_cast<std::uint64_t>(jobs.size()));
    w.kv("dropped_samples", dropped_samples);
    w.kv("dropped_events", dropped_events);
    if (metrics) {
        w.key("metrics");
        metrics->writeJson(w, options_.includeWallTime);
    }
    w.endObject();

    w.key("traceEvents");
    w.beginArray();
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        const TraceJob &job = jobs[j];
        const IntervalRecorder &rec = *job.recorder;
        const auto pid = static_cast<std::uint64_t>(j);

        writeProcessName(w, pid, job.name);

        for (std::size_t i = 0; i < rec.size(); ++i) {
            const IntervalSample &s = rec.sample(i);
            const std::uint64_t ts = intervalTs(s.interval);
            writeCounterEvent(w, "occupancy", pid, ts, s.occupancy);
            if (!s.target.empty())
                writeCounterEvent(w, "target", pid, ts, s.target);
            if (!s.evProb.empty())
                writeCounterEvent(w, "ev_prob", pid, ts, s.evProb);
            writeCounterEvent(w, "miss_frac", pid, ts, s.missFrac);
            writeCounterEvent(w, "ipc", pid, ts, s.ipc);
            writeCounterEvent(w, "hits", pid, ts, s.hits);
            writeCounterEvent(w, "misses", pid, ts, s.misses);
        }

        for (std::size_t i = 0; i < rec.eventCount(); ++i)
            writeInstantEvent(w, pid, rec.event(i));
    }

    if (options_.includeWallTime && metrics) {
        // Aggregated spans as one synthetic "spans" process: each
        // span's total wall time renders as a single duration slice.
        const auto pid = static_cast<std::uint64_t>(jobs.size());
        writeProcessName(w, pid, "spans (aggregate wall time)");
        for (const auto &[base, agg] : spanAggregates(*metrics)) {
            beginEvent(w, base, "X", pid, 0);
            w.kv("dur", static_cast<double>(agg.second) / 1000.0);
            w.key("args");
            w.beginObject();
            w.kv("calls", agg.first);
            w.kv("wall_ns", agg.second);
            w.endObject();
            w.endObject();
        }
    }
    w.endArray();

    w.endObject();
}

void
TraceWriter::writeCsv(std::ostream &os,
                      std::span<const TraceJob> jobs) const
{
    os << "job,interval,core,occupancy,target,ev_prob,miss_frac,"
          "hits,misses,ipc\n";
    for (const TraceJob &job : jobs) {
        panicIf(!job.recorder, "TraceWriter: job without recorder");
        const IntervalRecorder &rec = *job.recorder;
        for (std::size_t i = 0; i < rec.size(); ++i) {
            const IntervalSample &s = rec.sample(i);
            for (std::size_t c = 0; c < s.occupancy.size(); ++c) {
                os << csvField(job.name) << ',' << s.interval
                   << ',' << c << ','
                   << JsonWriter::formatDouble(s.occupancy[c]) << ',';
                if (c < s.target.size())
                    os << JsonWriter::formatDouble(s.target[c]);
                os << ',';
                if (c < s.evProb.size())
                    os << JsonWriter::formatDouble(s.evProb[c]);
                os << ','
                   << JsonWriter::formatDouble(s.missFrac[c]) << ','
                   << s.hits[c] << ',' << s.misses[c] << ','
                   << JsonWriter::formatDouble(s.ipc[c]) << '\n';
            }
        }
    }
}

} // namespace prism::telemetry
