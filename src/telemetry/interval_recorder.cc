#include "telemetry/interval_recorder.hh"

#include <utility>

#include "common/prism_assert.hh"

namespace prism::telemetry
{

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::CoreFinish:
        return "core_finish";
      case EventKind::DegradedInterval:
        return "degraded_interval";
      case EventKind::DroppedRecompute:
        return "dropped_recompute";
      case EventKind::DistributionRepair:
        return "distribution_repair";
      case EventKind::FallbackEntered:
        return "fallback_entered";
      case EventKind::OwnershipRepair:
        return "ownership_repair";
      case EventKind::JobRetry:
        return "job_retry";
      case EventKind::JobTimeout:
        return "job_timeout";
      case EventKind::JobQuarantine:
        return "job_quarantine";
      case EventKind::DoctorWarn:
        return "doctor_warn";
      case EventKind::DoctorFail:
        return "doctor_fail";
    }
    return "?";
}

IntervalRecorder::IntervalRecorder(std::size_t capacity)
    : capacity_(capacity)
{
    fatalIf(capacity_ == 0, "IntervalRecorder: zero capacity");
    ring_.reserve(capacity_);
    events_.reserve(capacity_);
}

void
IntervalRecorder::record(IntervalSample sample)
{
    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(sample));
    } else {
        ring_[head_] = std::move(sample);
        head_ = (head_ + 1) % capacity_;
    }
    ++recorded_;
}

const IntervalSample &
IntervalRecorder::sample(std::size_t i) const
{
    panicIf(i >= ring_.size(), "IntervalRecorder: sample out of range");
    return ring_[(head_ + i) % ring_.size()];
}

void
IntervalRecorder::addEvent(const TelemetryEvent &event)
{
    if (events_.size() < capacity_) {
        events_.push_back(event);
    } else {
        events_[events_head_] = event;
        events_head_ = (events_head_ + 1) % capacity_;
    }
    ++events_seen_;
}

const TelemetryEvent &
IntervalRecorder::event(std::size_t i) const
{
    panicIf(i >= events_.size(),
            "IntervalRecorder: event out of range");
    return events_[(events_head_ + i) % events_.size()];
}

double
finishOccupancy(const IntervalRecorder &recorder, CoreId core)
{
    for (std::size_t i = 0; i < recorder.eventCount(); ++i) {
        const TelemetryEvent &ev = recorder.event(i);
        if (ev.kind == EventKind::CoreFinish && ev.core == core)
            return ev.value;
    }
    return 0.0;
}

RunningStat
evProbStat(const IntervalRecorder &recorder, CoreId core)
{
    RunningStat stat;
    for (std::size_t i = 0; i < recorder.size(); ++i) {
        const IntervalSample &s = recorder.sample(i);
        if (core < s.evProb.size())
            stat.add(s.evProb[core]);
    }
    return stat;
}

} // namespace prism::telemetry
