/**
 * @file
 * Scoped timers over MetricsRegistry counters.
 *
 * A span aggregates into two counters — "<name>.calls" and
 * "<name>.wall_ns" — rather than recording one trace event per
 * entry: the instrumented paths (SharedCache::access in particular)
 * run millions of times per simulation, and per-event recording
 * would both dwarf the simulation cost and make trace files
 * non-deterministic. Call counts are deterministic; wall time is
 * not, and is filtered from serialisation by default (see
 * MetricsRegistry::isWallClock).
 *
 * Zero-cost-when-disabled: a default-constructed SpanStats has null
 * counters, and the span then neither reads the clock nor touches
 * memory — one predictable branch per scope.
 */

#ifndef PRISM_TELEMETRY_SPAN_HH
#define PRISM_TELEMETRY_SPAN_HH

#include <chrono>
#include <cstdint>

#include "telemetry/metrics_registry.hh"

namespace prism::telemetry
{

/** RAII scope timer; see PRISM_SPAN. */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const SpanStats &stats) : stats_(stats)
    {
        if (stats_.calls)
            start_ = std::chrono::steady_clock::now();
    }

    ~ScopedSpan()
    {
        if (!stats_.calls)
            return;
        const auto end = std::chrono::steady_clock::now();
        stats_.calls->add(1);
        stats_.wallNanos->add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                end - start_)
                .count()));
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    SpanStats stats_;
    std::chrono::steady_clock::time_point start_{};
};

} // namespace prism::telemetry

#define PRISM_SPAN_CONCAT2(a, b) a##b
#define PRISM_SPAN_CONCAT(a, b) PRISM_SPAN_CONCAT2(a, b)

/** Time the enclosing scope against @p stats (a SpanStats). */
#define PRISM_SPAN(stats)                                              \
    const ::prism::telemetry::ScopedSpan PRISM_SPAN_CONCAT(            \
        prism_span_, __LINE__)(stats)

#endif // PRISM_TELEMETRY_SPAN_HH
