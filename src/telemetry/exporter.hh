/**
 * @file
 * Metrics exposition: deterministic point-in-time snapshots of a
 * running driver, rendered as a versioned `prism-metrics-v1` JSON
 * document and as Prometheus text exposition, written atomically.
 *
 * The snapshot is a plain value assembled by the caller (the serve
 * engine's live observer, or prism_bench's sweep observer) from
 * state that is itself deterministic — cumulative totals, the
 * SlidingWindow, the MetricsRegistry — and keyed by the round index,
 * never the wall clock. Rendering walks fixed key orders and sorted
 * metric names through JsonWriter, so the same round of the same run
 * produces byte-identical files at any --threads value, and the live
 * plane can be golden-tested like the offline artifacts
 * (docs/OBSERVABILITY.md, "Live metrics & online doctor").
 *
 * Files are written with writeFileAtomic (tmp + fsync + rename): a
 * tailing reader such as prism_top never observes a torn snapshot.
 */

#ifndef PRISM_TELEMETRY_EXPORTER_HH
#define PRISM_TELEMETRY_EXPORTER_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.hh"
#include "telemetry/window.hh"

namespace prism::telemetry
{

class MetricsRegistry;

/** Per-tenant cumulative state at the snapshot round. */
struct TenantLiveState
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t shadowHits = 0;
    std::uint64_t evictions = 0;
    std::uint64_t occupancyBytes = 0;

    double hitRatio = 1.0;  ///< hits / accesses (1.0 when none)
    double occupancy = 0.0; ///< occupancyBytes / capacityBytes
    double target = 0.0;    ///< T_i currently in effect
    double evProb = 0.0;    ///< E_i currently in effect
    double sloHit = 0.0;    ///< configured hit-ratio floor
};

/**
 * One online-doctor finding, decoupled from the analysis layer so
 * telemetry stays a leaf library (statuses travel as their printed
 * names: "PASS" / "WARN" / "FAIL" / "SKIP").
 */
struct DoctorFindingLine
{
    std::string check;
    std::string status;
    double value = 0.0;
    double threshold = 0.0;
    bool hasValue = false;
    std::string detail;
};

/**
 * Everything one snapshot renders. Pointers are non-owning and may
 * be null; empty sections are omitted from the output.
 */
struct MetricsSnapshot
{
    std::string source; ///< "serve" or "bench"
    std::string run;    ///< run identity (e.g. "serve/PriSM-H")
    std::string policy; ///< serve policy long name; "" = omit

    std::uint64_t round = 0; ///< snapshot key (rounds / jobs done)
    std::uint64_t ops = 0;
    std::uint64_t intervals = 0;

    // Serve-wide totals; rendered when tenants is non-empty.
    std::uint64_t evictions = 0;
    std::uint64_t victimlessEvictions = 0;
    std::uint64_t recomputes = 0;
    std::uint64_t eq1Fallbacks = 0;
    std::uint64_t clampedEq1Inputs = 0;
    std::uint64_t occupancyBytes = 0;
    std::uint64_t capacityBytes = 0;
    std::uint64_t objects = 0;
    std::vector<TenantLiveState> tenants;

    // Sweep progress; rendered when jobsTotal > 0 (bench source).
    std::uint64_t jobsCompleted = 0;
    std::uint64_t jobsTotal = 0;

    std::uint64_t droppedSamples = 0;
    std::uint64_t droppedEvents = 0;

    /** Live window; adds per-tenant window stats + series section. */
    const SlidingWindow *window = nullptr;

    // Online-doctor verdict; rendered when doctorOverall non-empty.
    std::string doctorOverall;
    std::vector<DoctorFindingLine> doctorFindings;

    /** Registry section ({counters, gauges, histograms}). */
    const MetricsRegistry *metrics = nullptr;
    /** Include ".wall_ns" counters (non-deterministic). */
    bool includeWallMetrics = false;
};

/** Where and how often MetricsExporter writes. */
struct ExporterConfig
{
    std::string jsonPath; ///< prism-metrics-v1 file; "" = none
    std::string promPath; ///< Prometheus text file; "" = none
    std::uint64_t every = 0; ///< cadence in rounds; 0 = final only
};

/**
 * Periodic snapshot writer. due()/exportIfDue() implement the
 * `--metrics-every N` cadence on the round counter; flush() is the
 * unconditional final write both drivers perform on exit (including
 * the SIGINT/SIGTERM path).
 */
class MetricsExporter
{
  public:
    explicit MetricsExporter(ExporterConfig config)
        : config_(std::move(config))
    {
    }

    const ExporterConfig &config() const { return config_; }

    bool
    enabled() const
    {
        return !config_.jsonPath.empty() ||
               !config_.promPath.empty();
    }

    /** Whether the cadence fires at @p round (1-based, > 0). */
    bool
    due(std::uint64_t round) const
    {
        return enabled() && config_.every > 0 && round > 0 &&
               round % config_.every == 0;
    }

    /** Write the configured outputs when due(@p round). */
    Status
    exportIfDue(std::uint64_t round, const MetricsSnapshot &snap)
    {
        return due(round) ? flush(snap) : Status();
    }

    /** Unconditionally write the configured outputs. */
    Status flush(const MetricsSnapshot &snap);

    /** Snapshots written so far (each flush counts once). */
    std::uint64_t exports() const { return exports_; }

    /** Render @p snap as a prism-metrics-v1 document. */
    static void writeJson(std::ostream &os,
                          const MetricsSnapshot &snap);

    /** Render @p snap in Prometheus text exposition format. */
    static void writePrometheus(std::ostream &os,
                                const MetricsSnapshot &snap);

  private:
    ExporterConfig config_;
    std::uint64_t exports_ = 0;
};

} // namespace prism::telemetry

#endif // PRISM_TELEMETRY_EXPORTER_HH
