/**
 * @file
 * Named-metric registry: counters, gauges and fixed-bucket
 * histograms, safe to update from concurrent sweep jobs.
 *
 * Determinism: serialisation walks the metrics in name order and
 * goes through JsonWriter, so identical metric values produce
 * byte-identical output. Wall-clock span totals (names ending in
 * ".wall_ns") are inherently non-deterministic and are therefore
 * excluded from serialisation unless explicitly requested — the
 * same rule writeSweepJson applies to its timing section.
 */

#ifndef PRISM_TELEMETRY_METRICS_REGISTRY_HH
#define PRISM_TELEMETRY_METRICS_REGISTRY_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hh"

namespace prism::telemetry
{

/** Monotonic event counter. */
class Counter
{
  public:
    void
    add(std::uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-value-wins instantaneous measurement. */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-bucket histogram with upper-inclusive bucket bounds: a value
 * v lands in the first bucket whose bound satisfies v <= bound, and
 * values above the last bound land in the overflow bucket (index
 * numBounds). Bounds must be strictly ascending.
 */
class Histogram
{
  public:
    explicit Histogram(std::span<const double> bounds);

    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    void observe(double v);

    const std::vector<double> &bounds() const { return bounds_; }

    /** Buckets including the overflow bucket. */
    std::size_t numBuckets() const { return buckets_.size(); }

    std::uint64_t
    bucketCount(std::size_t i) const
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }

    std::uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    double sum() const { return sum_.load(std::memory_order_relaxed); }

    /**
     * The @p q quantile (q in [0, 1], e.g. 0.5 / 0.95 / 0.99),
     * linearly interpolated inside the bucket holding the target
     * rank. Observations are assumed non-negative (the first bucket
     * interpolates from 0); ranks landing in the overflow bucket
     * report the last bound (the histogram cannot resolve beyond
     * it). Returns 0 for an empty histogram.
     */
    double quantile(double q) const;

    /**
     * @p count strictly ascending bounds growing geometrically from
     * @p first by @p factor — the standard latency-bucket ladder
     * (e.g. first=1, factor=2, count=20 covers 1us..1s in microsecond
     * units).
     */
    static std::vector<double>
    exponentialBounds(double first, double factor, std::size_t count);

  private:
    std::vector<double> bounds_;
    std::vector<std::atomic<std::uint64_t>> buckets_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/**
 * The two counters behind one scoped-timer name. Null pointers mean
 * "telemetry disabled": a ScopedSpan built from a default SpanStats
 * never reads the clock (the zero-cost-when-disabled contract).
 */
struct SpanStats
{
    Counter *calls = nullptr;
    Counter *wallNanos = nullptr;

    explicit operator bool() const { return calls != nullptr; }
};

/**
 * Registry of named metrics. Registration and updates are
 * thread-safe; metric objects live as long as the registry and keep
 * stable addresses, so hot paths hold direct pointers and never
 * touch the registry lock.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The counter named @p name, creating it on first use. */
    Counter &counter(const std::string &name);

    /** The gauge named @p name, creating it on first use. */
    Gauge &gauge(const std::string &name);

    /**
     * The histogram named @p name, creating it with @p bounds on
     * first use; later calls return the existing histogram (the
     * original bounds win).
     */
    Histogram &histogram(const std::string &name,
                         std::span<const double> bounds);

    /**
     * The scoped-timer stats for @p name: counters "<name>.calls"
     * and "<name>.wall_ns".
     */
    SpanStats span(const std::string &name);

    /** Whether @p name carries wall-clock data (".wall_ns" suffix). */
    static bool isWallClock(std::string_view name);

    /** Sorted name/value snapshot of every counter. */
    std::vector<std::pair<std::string, std::uint64_t>>
    counterValues() const;

    /**
     * Walk every metric in name order under the registry lock —
     * counters first, then gauges, then histograms. Null callbacks
     * skip that kind; wall-clock counters are skipped unless
     * @p include_wall is set. The exporter's Prometheus renderer
     * lives on this.
     */
    void
    visit(const std::function<void(const std::string &,
                                   const Counter &)> &counter_fn,
          const std::function<void(const std::string &,
                                   const Gauge &)> &gauge_fn,
          const std::function<void(const std::string &,
                                   const Histogram &)> &histogram_fn,
          bool include_wall = false) const;

    /**
     * Serialise as one JSON object {counters, gauges, histograms},
     * names sorted. Wall-clock counters are skipped unless
     * @p include_wall is set.
     */
    void writeJson(JsonWriter &w, bool include_wall = false) const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace prism::telemetry

#endif // PRISM_TELEMETRY_METRICS_REGISTRY_HH
