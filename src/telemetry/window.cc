#include "telemetry/window.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>

namespace prism::telemetry
{

namespace
{

/**
 * Relative-drift denominators are floored so that a tiny EWMA does
 * not turn ordinary noise into a huge ratio: one-twentieth of the
 * miss-rate scale, and 1.0 for slowdown (whose EWMA is >= 1 anyway).
 */
constexpr double kMissRateDriftFloor = 0.05;
constexpr double kSlowdownDriftFloor = 1.0;

double
at(const std::vector<double> &v, std::size_t i)
{
    return i < v.size() ? v[i] : 0.0;
}

std::uint64_t
at(const std::vector<std::uint64_t> &v, std::size_t i)
{
    return i < v.size() ? v[i] : 0;
}

/** Exact quantile of a sorted series, linear interpolation. */
double
quantileSorted(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const double rank =
        q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    if (lo + 1 >= sorted.size())
        return sorted.back();
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[lo + 1] - sorted[lo]) * frac;
}

} // namespace

SlidingWindow::SlidingWindow(std::uint32_t tenants,
                             WindowConfig config)
    : tenants_(tenants), config_(config), ewma_(tenants)
{
    if (config_.capacity == 0)
        config_.capacity = 1;
    ring_.reserve(config_.capacity);
}

void
SlidingWindow::push(const IntervalSample &sample,
                    std::span<const std::uint64_t> evictions)
{
    Row row;
    row.interval = sample.interval;
    row.occupancy.resize(tenants_);
    row.target.resize(tenants_);
    row.evProb.resize(tenants_);
    row.hits.resize(tenants_);
    row.misses.resize(tenants_);
    row.evictions.resize(tenants_);
    for (std::uint32_t t = 0; t < tenants_; ++t) {
        row.occupancy[t] = at(sample.occupancy, t);
        row.target[t] = at(sample.target, t);
        row.evProb[t] = at(sample.evProb, t);
        row.hits[t] = at(sample.hits, t);
        row.misses[t] = at(sample.misses, t);
        row.evictions[t] =
            t < evictions.size() ? evictions[t] : 0;
    }

    // Fold the interval into the EWMA state before the ring may
    // drop it: drift tracks the whole stream, not just the window.
    for (std::uint32_t t = 0; t < tenants_; ++t) {
        const double acc =
            static_cast<double>(row.hits[t] + row.misses[t]);
        const double miss_rate =
            acc > 0.0 ? static_cast<double>(row.misses[t]) / acc
                      : 0.0;
        const double slowdown =
            1.0 + miss_rate * (config_.missPenalty - 1.0);
        Ewma &e = ewma_[t];
        if (!e.seeded) {
            e.seeded = true;
            e.missRate = miss_rate;
            e.slowdown = slowdown;
            e.missRateDrift = 0.0;
            e.slowdownDrift = 0.0;
        } else {
            e.missRateDrift =
                std::fabs(miss_rate - e.missRate) /
                std::max(e.missRate, kMissRateDriftFloor);
            e.slowdownDrift =
                std::fabs(slowdown - e.slowdown) /
                std::max(e.slowdown, kSlowdownDriftFloor);
            e.missRate = config_.ewmaAlpha * miss_rate +
                         (1.0 - config_.ewmaAlpha) * e.missRate;
            e.slowdown = config_.ewmaAlpha * slowdown +
                         (1.0 - config_.ewmaAlpha) * e.slowdown;
        }
    }

    if (ring_.size() < config_.capacity) {
        ring_.push_back(std::move(row));
    } else {
        ring_[head_] = std::move(row);
        head_ = (head_ + 1) % config_.capacity;
    }
    ++pushed_;
}

const SlidingWindow::Row &
SlidingWindow::row(std::size_t i) const
{
    assert(i < ring_.size());
    return ring_[(head_ + i) % ring_.size()];
}

std::uint64_t
SlidingWindow::lastInterval() const
{
    return ring_.empty() ? 0 : row(ring_.size() - 1).interval;
}

TenantWindowStats
SlidingWindow::stats(std::uint32_t t) const
{
    TenantWindowStats s;
    s.intervals = ring_.size();
    if (t < ewma_.size()) {
        const Ewma &e = ewma_[t];
        s.ewmaMissRate = e.missRate;
        s.missRateDrift = e.missRateDrift;
        s.ewmaSlowdown = e.slowdown;
        s.slowdownDrift = e.slowdownDrift;
    }
    if (ring_.empty() || t >= tenants_)
        return s;

    std::vector<double> hit_ratios;
    std::vector<double> slowdowns;
    hit_ratios.reserve(ring_.size());
    slowdowns.reserve(ring_.size());
    double churn_sum = 0.0;
    double prev_ev_prob = 0.0;
    for (std::size_t i = 0; i < ring_.size(); ++i) {
        const Row &r = row(i);
        s.hits += r.hits[t];
        s.misses += r.misses[t];
        s.evictions += r.evictions[t];
        const double acc =
            static_cast<double>(r.hits[t] + r.misses[t]);
        const double hr =
            acc > 0.0 ? static_cast<double>(r.hits[t]) / acc : 1.0;
        hit_ratios.push_back(hr);
        slowdowns.push_back(
            1.0 + (1.0 - hr) * (config_.missPenalty - 1.0));
        if (i > 0)
            churn_sum += std::fabs(r.evProb[t] - prev_ev_prob);
        prev_ev_prob = r.evProb[t];
    }
    const double acc = static_cast<double>(s.hits + s.misses);
    s.hitRatio =
        acc > 0.0 ? static_cast<double>(s.hits) / acc : 1.0;
    s.missRate = acc > 0.0 ? 1.0 - s.hitRatio : 0.0;
    s.slowdown =
        1.0 + (1.0 - s.hitRatio) * (config_.missPenalty - 1.0);
    s.churn = ring_.size() > 1
                  ? churn_sum /
                        static_cast<double>(ring_.size() - 1)
                  : 0.0;

    std::sort(hit_ratios.begin(), hit_ratios.end());
    std::sort(slowdowns.begin(), slowdowns.end());
    s.hitRatioP50 = quantileSorted(hit_ratios, 0.5);
    s.hitRatioP90 = quantileSorted(hit_ratios, 0.9);
    s.slowdownP50 = quantileSorted(slowdowns, 0.5);
    s.slowdownP90 = quantileSorted(slowdowns, 0.9);
    return s;
}

} // namespace prism::telemetry
