#include "telemetry/exporter.hh"

#include <cctype>
#include <sstream>

#include "common/atomic_file.hh"
#include "common/json.hh"
#include "telemetry/metrics_registry.hh"

namespace prism::telemetry
{

namespace
{

void
writeTenantWindowStats(JsonWriter &w, const TenantWindowStats &s)
{
    w.beginObject();
    w.kv("intervals", s.intervals);
    w.kv("hits", s.hits);
    w.kv("misses", s.misses);
    w.kv("evictions", s.evictions);
    w.kv("hit_ratio", s.hitRatio);
    w.kv("miss_rate", s.missRate);
    w.kv("fair_slowdown", s.slowdown);
    w.kv("churn", s.churn);
    w.kv("hit_ratio_p50", s.hitRatioP50);
    w.kv("hit_ratio_p90", s.hitRatioP90);
    w.kv("slowdown_p50", s.slowdownP50);
    w.kv("slowdown_p90", s.slowdownP90);
    w.kv("ewma_miss_rate", s.ewmaMissRate);
    w.kv("miss_rate_drift", s.missRateDrift);
    w.kv("ewma_slowdown", s.ewmaSlowdown);
    w.kv("slowdown_drift", s.slowdownDrift);
    w.endObject();
}

void
writeWindowSeries(JsonWriter &w, const SlidingWindow &win)
{
    w.beginObject();
    w.kv("capacity", static_cast<std::uint64_t>(win.capacity()));
    w.kv("size", static_cast<std::uint64_t>(win.size()));
    w.kv("pushed", win.pushed());
    std::vector<std::uint64_t> intervals;
    intervals.reserve(win.size());
    for (std::size_t i = 0; i < win.size(); ++i)
        intervals.push_back(win.row(i).interval);
    w.kv("interval", std::span<const std::uint64_t>(intervals));
    const auto seriesD =
        [&](std::string_view key,
            const std::vector<double> SlidingWindow::Row::*field) {
            w.key(key);
            w.beginArray();
            for (std::size_t i = 0; i < win.size(); ++i) {
                const auto &v = win.row(i).*field;
                w.beginArray();
                for (const double x : v)
                    w.value(x);
                w.endArray();
            }
            w.endArray();
        };
    const auto seriesU =
        [&](std::string_view key,
            const std::vector<std::uint64_t>
                SlidingWindow::Row::*field) {
            w.key(key);
            w.beginArray();
            for (std::size_t i = 0; i < win.size(); ++i) {
                const auto &v = win.row(i).*field;
                w.beginArray();
                for (const std::uint64_t x : v)
                    w.value(x);
                w.endArray();
            }
            w.endArray();
        };
    seriesD("occupancy", &SlidingWindow::Row::occupancy);
    seriesD("target", &SlidingWindow::Row::target);
    seriesD("ev_prob", &SlidingWindow::Row::evProb);
    seriesU("hits", &SlidingWindow::Row::hits);
    seriesU("misses", &SlidingWindow::Row::misses);
    seriesU("evictions", &SlidingWindow::Row::evictions);
    w.endObject();
}

// --- Prometheus text exposition ---------------------------------

/** Metric-name charset is [a-zA-Z0-9_:]; everything else -> '_'. */
std::string
promName(std::string_view name)
{
    std::string out;
    out.reserve(name.size());
    for (const char c : name) {
        const bool ok =
            std::isalnum(static_cast<unsigned char>(c)) ||
            c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    return out;
}

/** Escape a label value: backslash, quote and newline. */
std::string
promLabel(std::string_view v)
{
    std::string out;
    out.reserve(v.size());
    for (const char c : v) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out.push_back(c);
    }
    return out;
}

std::string
promDouble(double v)
{
    return JsonWriter::formatDouble(v);
}

void
promHeader(std::ostream &os, std::string_view name,
           std::string_view type, std::string_view help)
{
    os << "# HELP " << name << " " << help << "\n";
    os << "# TYPE " << name << " " << type << "\n";
}

} // namespace

Status
MetricsExporter::flush(const MetricsSnapshot &snap)
{
    if (!config_.jsonPath.empty()) {
        std::ostringstream os;
        writeJson(os, snap);
        os << "\n";
        Status st = writeFileAtomic(config_.jsonPath, os.str());
        if (!st)
            return st;
    }
    if (!config_.promPath.empty()) {
        std::ostringstream os;
        writePrometheus(os, snap);
        Status st = writeFileAtomic(config_.promPath, os.str());
        if (!st)
            return st;
    }
    ++exports_;
    return Status();
}

void
MetricsExporter::writeJson(std::ostream &os,
                           const MetricsSnapshot &snap)
{
    JsonWriter w(os);
    w.beginObject();
    w.kv("schema", "prism-metrics-v1");
    w.kv("source", snap.source);
    w.kv("run", snap.run);
    if (!snap.policy.empty())
        w.kv("policy", snap.policy);
    w.kv("round", snap.round);
    w.kv("ops", snap.ops);
    w.kv("intervals", snap.intervals);

    if (snap.jobsTotal > 0) {
        w.key("sweep");
        w.beginObject();
        w.kv("jobs", snap.jobsTotal);
        w.kv("completed", snap.jobsCompleted);
        w.endObject();
    }

    if (!snap.tenants.empty()) {
        w.key("totals");
        w.beginObject();
        w.kv("evictions", snap.evictions);
        w.kv("victimless_evictions", snap.victimlessEvictions);
        w.kv("recomputes", snap.recomputes);
        w.kv("eq1_fallbacks", snap.eq1Fallbacks);
        w.kv("clamped_eq1_inputs", snap.clampedEq1Inputs);
        w.kv("occupancy_bytes", snap.occupancyBytes);
        w.kv("capacity_bytes", snap.capacityBytes);
        w.kv("objects", snap.objects);
        w.endObject();

        w.key("tenants");
        w.beginArray();
        for (std::size_t t = 0; t < snap.tenants.size(); ++t) {
            const TenantLiveState &ts = snap.tenants[t];
            w.beginObject();
            w.kv("tenant", static_cast<std::uint64_t>(t));
            w.kv("hits", ts.hits);
            w.kv("misses", ts.misses);
            w.kv("shadow_hits", ts.shadowHits);
            w.kv("evictions", ts.evictions);
            w.kv("occupancy_bytes", ts.occupancyBytes);
            w.kv("hit_ratio", ts.hitRatio);
            w.kv("occupancy", ts.occupancy);
            w.kv("target", ts.target);
            w.kv("ev_prob", ts.evProb);
            w.kv("slo_hit", ts.sloHit);
            if (snap.window) {
                w.key("window");
                writeTenantWindowStats(
                    w, snap.window->stats(
                           static_cast<std::uint32_t>(t)));
            }
            w.endObject();
        }
        w.endArray();
    }

    if (snap.window) {
        w.key("window");
        writeWindowSeries(w, *snap.window);
    }

    if (!snap.doctorOverall.empty()) {
        w.key("doctor");
        w.beginObject();
        w.kv("overall", snap.doctorOverall);
        w.key("findings");
        w.beginArray();
        for (const DoctorFindingLine &f : snap.doctorFindings) {
            w.beginObject();
            w.kv("check", f.check);
            w.kv("status", f.status);
            if (f.hasValue) {
                w.kv("value", f.value);
                w.kv("threshold", f.threshold);
            }
            w.kv("detail", f.detail);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }

    w.key("telemetry");
    w.beginObject();
    w.kv("dropped_samples", snap.droppedSamples);
    w.kv("dropped_events", snap.droppedEvents);
    w.endObject();

    if (snap.metrics) {
        w.key("metrics");
        snap.metrics->writeJson(w, snap.includeWallMetrics);
    }

    w.endObject();
}

void
MetricsExporter::writePrometheus(std::ostream &os,
                                 const MetricsSnapshot &snap)
{
    promHeader(os, "prism_info", "gauge", "Run identity labels.");
    os << "prism_info{source=\"" << promLabel(snap.source)
       << "\",run=\"" << promLabel(snap.run) << "\"";
    if (!snap.policy.empty())
        os << ",policy=\"" << promLabel(snap.policy) << "\"";
    os << "} 1\n";

    promHeader(os, "prism_round", "counter",
               "Rounds completed (the snapshot key).");
    os << "prism_round " << snap.round << "\n";
    promHeader(os, "prism_ops_total", "counter",
               "Operations applied.");
    os << "prism_ops_total " << snap.ops << "\n";
    promHeader(os, "prism_intervals_total", "counter",
               "Allocation intervals closed.");
    os << "prism_intervals_total " << snap.intervals << "\n";

    if (snap.jobsTotal > 0) {
        promHeader(os, "prism_sweep_jobs", "gauge",
                   "Jobs in the sweep.");
        os << "prism_sweep_jobs " << snap.jobsTotal << "\n";
        promHeader(os, "prism_sweep_jobs_completed", "counter",
                   "Jobs completed so far.");
        os << "prism_sweep_jobs_completed " << snap.jobsCompleted
           << "\n";
    }

    if (!snap.tenants.empty()) {
        promHeader(os, "prism_evictions_total", "counter",
                   "Objects evicted across tenants.");
        os << "prism_evictions_total " << snap.evictions << "\n";
        promHeader(os, "prism_occupancy_bytes", "gauge",
                   "Bytes resident in the store.");
        os << "prism_occupancy_bytes " << snap.occupancyBytes
           << "\n";
        promHeader(os, "prism_capacity_bytes", "gauge",
                   "Configured store capacity.");
        os << "prism_capacity_bytes " << snap.capacityBytes
           << "\n";

        const auto perTenantU64 =
            [&](std::string_view name, std::string_view type,
                std::string_view help, auto get) {
                promHeader(os, name, type, help);
                for (std::size_t t = 0; t < snap.tenants.size();
                     ++t)
                    os << name << "{tenant=\"" << t << "\"} "
                       << get(snap.tenants[t]) << "\n";
            };
        const auto perTenantD =
            [&](std::string_view name, std::string_view help,
                auto get) {
                promHeader(os, name, "gauge", help);
                for (std::size_t t = 0; t < snap.tenants.size();
                     ++t)
                    os << name << "{tenant=\"" << t << "\"} "
                       << promDouble(get(snap.tenants[t])) << "\n";
            };
        perTenantU64("prism_tenant_hits_total", "counter",
                     "Hits per tenant.",
                     [](const TenantLiveState &t) {
                         return t.hits;
                     });
        perTenantU64("prism_tenant_misses_total", "counter",
                     "Misses per tenant.",
                     [](const TenantLiveState &t) {
                         return t.misses;
                     });
        perTenantU64("prism_tenant_evictions_total", "counter",
                     "Evictions charged per tenant.",
                     [](const TenantLiveState &t) {
                         return t.evictions;
                     });
        perTenantU64("prism_tenant_occupancy_bytes", "gauge",
                     "Bytes resident per tenant.",
                     [](const TenantLiveState &t) {
                         return t.occupancyBytes;
                     });
        perTenantD("prism_tenant_hit_ratio",
                   "Cumulative hit ratio per tenant.",
                   [](const TenantLiveState &t) {
                       return t.hitRatio;
                   });
        perTenantD("prism_tenant_target",
                   "Occupancy target T_i in effect.",
                   [](const TenantLiveState &t) {
                       return t.target;
                   });
        perTenantD("prism_tenant_ev_prob",
                   "Eviction probability E_i in effect.",
                   [](const TenantLiveState &t) {
                       return t.evProb;
                   });

        if (snap.window) {
            const auto windowD = [&](std::string_view name,
                                     std::string_view help,
                                     auto get) {
                promHeader(os, name, "gauge", help);
                for (std::size_t t = 0; t < snap.tenants.size();
                     ++t) {
                    const TenantWindowStats ws =
                        snap.window->stats(
                            static_cast<std::uint32_t>(t));
                    os << name << "{tenant=\"" << t << "\"} "
                       << promDouble(get(ws)) << "\n";
                }
            };
            windowD("prism_tenant_window_hit_ratio",
                    "Hit ratio over the sliding window.",
                    [](const TenantWindowStats &s) {
                        return s.hitRatio;
                    });
            windowD("prism_tenant_window_fair_slowdown",
                    "Fair slowdown over the sliding window.",
                    [](const TenantWindowStats &s) {
                        return s.slowdown;
                    });
            windowD("prism_tenant_window_churn",
                    "Mean |dE_i| between window intervals.",
                    [](const TenantWindowStats &s) {
                        return s.churn;
                    });
            windowD("prism_tenant_miss_rate_drift",
                    "Relative EWMA miss-rate drift.",
                    [](const TenantWindowStats &s) {
                        return s.missRateDrift;
                    });
            windowD("prism_tenant_slowdown_drift",
                    "Relative EWMA slowdown drift.",
                    [](const TenantWindowStats &s) {
                        return s.slowdownDrift;
                    });
        }
    }

    if (!snap.doctorOverall.empty()) {
        promHeader(os, "prism_doctor_overall", "gauge",
                   "Online doctor overall verdict (label).");
        os << "prism_doctor_overall{status=\""
           << promLabel(snap.doctorOverall) << "\"} 1\n";
        promHeader(os, "prism_doctor_finding", "gauge",
                   "Per-check online doctor statuses.");
        for (const DoctorFindingLine &f : snap.doctorFindings)
            os << "prism_doctor_finding{check=\""
               << promLabel(f.check) << "\",status=\""
               << promLabel(f.status) << "\"} 1\n";
    }

    promHeader(os, "prism_telemetry_dropped_samples", "counter",
               "Interval samples dropped by the recorder ring.");
    os << "prism_telemetry_dropped_samples " << snap.droppedSamples
       << "\n";
    promHeader(os, "prism_telemetry_dropped_events", "counter",
               "Events dropped by the recorder ring.");
    os << "prism_telemetry_dropped_events " << snap.droppedEvents
       << "\n";

    if (snap.metrics) {
        snap.metrics->visit(
            [&](const std::string &name, const Counter &c) {
                const std::string n =
                    "prism_metric_" + promName(name);
                promHeader(os, n, "counter",
                           "Registry counter.");
                os << n << " " << c.value() << "\n";
            },
            [&](const std::string &name, const Gauge &g) {
                const std::string n =
                    "prism_metric_" + promName(name);
                promHeader(os, n, "gauge", "Registry gauge.");
                os << n << " " << promDouble(g.value()) << "\n";
            },
            [&](const std::string &name, const Histogram &h) {
                const std::string n =
                    "prism_metric_" + promName(name);
                promHeader(os, n, "histogram",
                           "Registry histogram.");
                std::uint64_t cumulative = 0;
                for (std::size_t i = 0; i < h.bounds().size();
                     ++i) {
                    cumulative += h.bucketCount(i);
                    os << n << "_bucket{le=\""
                       << promDouble(h.bounds()[i]) << "\"} "
                       << cumulative << "\n";
                }
                os << n << "_bucket{le=\"+Inf\"} " << h.count()
                   << "\n";
                os << n << "_sum " << promDouble(h.sum()) << "\n";
                os << n << "_count " << h.count() << "\n";
            },
            snap.includeWallMetrics);
    }
}

} // namespace prism::telemetry
