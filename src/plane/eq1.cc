#include "plane/eq1.hh"

#include <cmath>

#include "common/prism_assert.hh"

namespace prism
{

namespace
{

/**
 * Clamp one Equation 1 input into [0, 1]. NaN (no information) maps
 * to 0; +Inf saturates at 1, -Inf at 0 — so a single corrupted
 * counter degrades the estimate for one core instead of poisoning the
 * whole distribution.
 */
double
clampUnit(double v)
{
    if (std::isnan(v))
        return 0.0;
    if (v < 0.0)
        return 0.0;
    if (v > 1.0)
        return 1.0;
    return v;
}

bool
validUnit(double v)
{
    return std::isfinite(v) && v >= 0.0 && v <= 1.0;
}

} // namespace

double
eq1(double occupancy_c, double target_t, double miss_frac_m,
    std::uint64_t blocks_n, std::uint64_t interval_w)
{
    occupancy_c = clampUnit(occupancy_c);
    target_t = clampUnit(target_t);
    miss_frac_m = clampUnit(miss_frac_m);

    if (interval_w == 0) {
        // Limit of N/W -> infinity: any occupancy error dominates.
        if (occupancy_c > target_t)
            return 1.0;
        if (occupancy_c < target_t)
            return 0.0;
        return miss_frac_m;
    }

    const double n_over_w = static_cast<double>(blocks_n) /
                            static_cast<double>(interval_w);
    const double e = (occupancy_c - target_t) * n_over_w + miss_frac_m;
    if (e < 0.0)
        return 0.0;
    if (e > 1.0)
        return 1.0;
    return e;
}

double
predictedOccupancy(double occupancy_c, double miss_frac_m,
                   double evict_prob_e, std::uint64_t blocks_n,
                   std::uint64_t interval_w)
{
    panicIf(blocks_n == 0, "predictedOccupancy: zero blocks");
    const double w_over_n = static_cast<double>(interval_w) /
                            static_cast<double>(blocks_n);
    double tau =
        occupancy_c + (miss_frac_m - evict_prob_e) * w_over_n;
    if (tau < 0.0)
        tau = 0.0;
    if (tau > 1.0)
        tau = 1.0;
    return tau;
}

std::vector<double>
evictionDistribution(const std::vector<double> &occupancy,
                     const std::vector<double> &targets,
                     const std::vector<double> &miss_frac,
                     std::uint64_t blocks_n, std::uint64_t interval_w,
                     Eq1Stats *stats)
{
    const std::size_t n = occupancy.size();
    panicIf(targets.size() != n || miss_frac.size() != n,
            "evictionDistribution: size mismatch");

    // Sanitise inputs up front: NaN/Inf/out-of-range values (stale or
    // corrupted counters upstream) are clamped into [0, 1] and
    // counted rather than propagated into the distribution.
    auto sanitize = [&](double v) {
        if (validUnit(v))
            return v;
        if (stats)
            ++stats->clampedInputs;
        return clampUnit(v);
    };

    std::vector<double> m(n);
    std::vector<double> e(n);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        m[i] = sanitize(miss_frac[i]);
        e[i] = eq1(sanitize(occupancy[i]), sanitize(targets[i]), m[i],
                   blocks_n, interval_w);
        sum += e[i];
    }

    if (sum > 1.0) {
        // More eviction demand than misses available: scale down.
        for (auto &v : e)
            v /= sum;
        return e;
    }

    if (sum < 1.0) {
        // The per-core values do not account for every eviction the
        // interval will perform. The deficit must not be spread
        // uniformly — that would push cores sitting at their target
        // below it (Equation 1 gave them E ~= M_i for a reason).
        // Charge it to the cores holding more than their target,
        // proportionally to their excess; if nobody is over target,
        // fall back to miss shares (occupancy-neutral), then uniform.
        const double deficit = 1.0 - sum;
        std::vector<double> w(n);
        double w_sum = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            // Donors are cores Equation 1 already asked to shrink;
            // cores it protected (E_i == 0, still growing towards
            // their target) must not absorb the deficit.
            w[i] = e[i];
            w_sum += w[i];
        }
        if (w_sum <= 0.0) {
            // No donors at all: the miss-share (or, degenerately,
            // uniform) fallback decides the whole distribution.
            if (stats)
                ++stats->fallbackActivations;
            double m_sum = 0.0;
            for (double mi : m)
                m_sum += mi;
            if (m_sum > 0.0) {
                for (std::size_t i = 0; i < n; ++i)
                    w[i] = m[i];
                w_sum = m_sum;
            } else {
                for (auto &v : w)
                    v = 1.0;
                w_sum = static_cast<double>(n);
            }
        }
        for (std::size_t i = 0; i < n; ++i)
            e[i] += deficit * w[i] / w_sum;
    }
    return e;
}

} // namespace prism
