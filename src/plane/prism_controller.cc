#include "plane/prism_controller.hh"

#include <cmath>

#include "common/fixed_point.hh"
#include "plane/cache_plane.hh"
#include "common/prism_assert.hh"
#include "common/types.hh"

namespace prism
{

const char *
capacityUnitName(CapacityUnit unit)
{
    return unit == CapacityUnit::Bytes ? "bytes" : "blocks";
}

PrismController::PrismController(std::uint32_t domains,
                                 std::uint64_t seed,
                                 const ControllerParams &params)
    : domains_(domains), rng_(seed), params_(params)
{
    fatalIf(domains_ == 0, "PrismController: no domains");
    e_.assign(domains_, 1.0 / domains_);
    targets_.assign(domains_, 1.0 / domains_);
    prob_stats_.resize(domains_);
    sampler_.build(e_);
}

void
PrismController::setEvictionProbs(std::span<const double> e)
{
    panicIf(e.size() != domains_,
            "setEvictionProbs: distribution size != domain count");
    e_.assign(e.begin(), e.end());
    if (params_.probBits > 0) {
        const FixedPointCodec codec(params_.probBits);
        e_ = codec.quantiseDistribution(e_);
    }
    sampler_.build(e_);
}

void
PrismController::emitEvent(telemetry::EventKind kind, double value)
{
    if (recorder_)
        recorder_->addEvent(telemetry::TelemetryEvent{
            kind, interval_idx_, invalidCore, value});
}

bool
PrismController::beginRecompute()
{
    ++interval_idx_;
    degraded_ = false;

    if (injector_ && injector_->dropRecompute(interval_idx_)) {
        // The recompute event was lost: keep serving the previous
        // distribution for another interval.
        ++dropped_recomputes_;
        ++degraded_intervals_;
        emitEvent(telemetry::EventKind::DroppedRecompute);
        emitEvent(telemetry::EventKind::DegradedInterval);
        return false;
    }
    return true;
}

void
PrismController::conditionInputs(std::vector<double> &c,
                                 std::vector<double> &m)
{
    if (!injector_)
        return;
    std::vector<double> clean_c = c, clean_m = m;
    if (!prev_c_.empty() && injector_->staleSnapshot(interval_idx_)) {
        c = prev_c_;
        m = prev_m_;
        degraded_ = true;
    }
    injector_->poisonInputs(c, m, interval_idx_);
    prev_c_ = std::move(clean_c);
    prev_m_ = std::move(clean_m);
}

void
PrismController::commitRecompute(std::vector<double> targets,
                                 const std::vector<double> &c,
                                 const std::vector<double> &m,
                                 std::uint64_t capacity_units,
                                 std::uint64_t interval_misses)
{
    targets_ = std::move(targets);

    Eq1Stats recompute_stats;
    e_ = evictionDistribution(c, targets_, m, capacity_units,
                              interval_misses, &recompute_stats);
    eq1_stats_.clampedInputs += recompute_stats.clampedInputs;
    eq1_stats_.fallbackActivations +=
        recompute_stats.fallbackActivations;
    if (recompute_stats.clampedInputs > 0)
        degraded_ = true;

    if (params_.probBits > 0) {
        const FixedPointCodec codec(params_.probBits);
        e_ = codec.quantiseDistribution(e_);
    }

    if (injector_)
        injector_->saturateQuantisation(e_, interval_idx_);

    fallback_ = false;
    if (checked_ && !auditor_.checkDistribution(e_).ok()) {
        degraded_ = true;
        if (!repairDistribution())
            fallback_ = true;
        emitEvent(telemetry::EventKind::DistributionRepair,
                  fallback_ ? 0.0 : 1.0);
        if (fallback_) {
            ++fallback_entries_;
            emitEvent(telemetry::EventKind::FallbackEntered);
        }
    }

    if (degraded_) {
        ++degraded_intervals_;
        emitEvent(telemetry::EventKind::DegradedInterval);
    }
    degraded_ = false;

    // Rebuild the victim-selection table once per recompute — after
    // every mutation of e_ (quantisation, injected saturation,
    // repair) so the table and the distribution never diverge.
    sampler_.build(e_);

    ++recomputes_;
    for (std::uint32_t i = 0; i < domains_; ++i)
        prob_stats_[i].add(e_[i]);
}

bool
PrismController::repairDistribution()
{
    double sum = 0.0;
    for (double &v : e_) {
        if (!std::isfinite(v) || v < 0.0)
            v = 0.0;
        else if (v > 1.0)
            v = 1.0;
        sum += v;
    }
    if (sum <= 0.0) {
        // No probability mass survived: leave a safe uniform
        // distribution behind and tell the caller to fall back to
        // the backend's native replacement until the next interval.
        e_.assign(domains_, 1.0 / domains_);
        return false;
    }
    for (double &v : e_)
        v /= sum;
    return true;
}

} // namespace prism
