/**
 * @file
 * The PriSM analytical model (Equation 1 of the paper).
 *
 * Over an interval of W misses, a core with occupancy fraction C_i,
 * miss fraction M_i and eviction probability E_i ends the interval at
 * occupancy tau_i = C_i + (M_i - E_i) * W/N. Solving for the eviction
 * probability that drives the core to target occupancy T_i:
 *
 *   E_i = clamp( (C_i - T_i) * N/W + M_i , 0, 1 )
 *
 * (clamped because the target may be unreachable within one interval,
 * in which case the core should be evicted never or always). The
 * per-core values are then normalised into a distribution for the
 * core-selection step, which requires sum(E_i) == 1.
 */

#ifndef PRISM_PLANE_EQ1_HH
#define PRISM_PLANE_EQ1_HH

#include <cstdint>
#include <vector>

namespace prism
{

/** Counters filled in by the hardened distribution construction. */
struct Eq1Stats
{
    /** Inputs that were NaN/Inf/outside [0,1] and had to be clamped. */
    std::uint64_t clampedInputs = 0;

    /**
     * Recomputations where no core had any eviction demand (every
     * raw E_i clamped to zero — all cores at or below target) and
     * the distribution had to fall back to miss shares, or, when
     * the miss fractions were all zero as well (the all-equal
     * degenerate case), to the uniform distribution.
     */
    std::uint64_t fallbackActivations = 0;
};

/**
 * The clamped single-core Equation 1.
 *
 * Hardened: non-finite or out-of-range inputs are clamped into
 * [0, 1] (NaN and -Inf to 0, +Inf to 1) before evaluation, and
 * @p interval_w == 0 takes the analytic limit (occupancy error
 * dominates) instead of dividing by zero.
 */
double eq1(double occupancy_c, double target_t, double miss_frac_m,
           std::uint64_t blocks_n, std::uint64_t interval_w);

/**
 * Predicted end-of-interval occupancy tau_i given an eviction
 * probability (the forward form of the model, used by tests and the
 * analytical-model validation bench).
 */
double predictedOccupancy(double occupancy_c, double miss_frac_m,
                          double evict_prob_e, std::uint64_t blocks_n,
                          std::uint64_t interval_w);

/**
 * Compute the full eviction probability distribution from targets.
 *
 * Applies Equation 1 per core and normalises so the entries sum to
 * one. When the raw values sum short of one, the deficit is charged
 * to the cores Equation 1 already asked to shrink (E_i > 0),
 * proportionally to their demand. Only if every raw value clamps to
 * zero (all cores at or below target — possible transiently) does
 * eviction fall back to being proportional to the miss fractions,
 * which leaves occupancies unchanged in expectation; if the miss
 * fractions are all zero too, the fallback is uniform. Both fallback
 * branches count one @p stats fallback activation.
 *
 * Inputs are sanitised first: NaN/Inf or out-of-range entries are
 * clamped into [0, 1] and counted in @p stats instead of propagating
 * into the distribution.
 *
 * @param occupancy Per-core C_i.
 * @param targets Per-core T_i.
 * @param miss_frac Per-core M_i (should sum to ~1).
 * @param blocks_n N.
 * @param interval_w W.
 * @param stats Optional clamp counters (may be null).
 */
std::vector<double>
evictionDistribution(const std::vector<double> &occupancy,
                     const std::vector<double> &targets,
                     const std::vector<double> &miss_frac,
                     std::uint64_t blocks_n, std::uint64_t interval_w,
                     Eq1Stats *stats = nullptr);

} // namespace prism

#endif // PRISM_PLANE_EQ1_HH
