/**
 * @file
 * WayMaskScheme: the CAT-style way-mask backend of the CachePlane
 * split (DESIGN.md) — scheme name "PriSM-WM".
 *
 * Commodity hardware exposes no per-miss probabilistic victim hook;
 * what it does expose is per-core way masks (Intel CAT and
 * look-alikes). This backend runs the exact same PrismController
 * interval loop as the simulator's PrismScheme — targets T_i →
 * hardened Equation 1 → sampler → degraded-mode fallback — but
 * *enforces* the targets by quantising T_i to an integral way
 * allocation (largest-remainder rounding, one-way minimum; see
 * roundFractionsToWays) and letting the inherited way-partition
 * enforcement pick victims, the way LFOC maps its buckets onto CAT
 * allocations. The gap between the real-valued targets and the
 * quantised ways is tracked as the way-quantisation error the
 * doctor WARNs about when it exceeds a way on average.
 */

#ifndef PRISM_PLANE_WAY_MASK_SCHEME_HH
#define PRISM_PLANE_WAY_MASK_SCHEME_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "plane/cache_plane.hh"
#include "plane/prism_controller.hh"
#include "policies/way_partition.hh"
#include "prism/alloc_policy.hh"
#include "telemetry/span.hh"

namespace prism
{

/** PriSM control loop enforced through per-core way masks. */
class WayMaskScheme : public WayPartitionScheme,
                      public ControllerHost,
                      public CachePlane
{
  public:
    WayMaskScheme(std::uint32_t num_cores, std::uint32_t ways,
                  std::unique_ptr<PrismAllocPolicy> policy,
                  std::uint64_t seed,
                  const ControllerParams &params = {});

    std::string name() const override { return "PriSM-WM"; }

    /**
     * Run the shared controller recompute, then install
     * roundFractionsToWays(T, ways) as the new way allocation.
     * While the controller is in fallback the previous allocation is
     * kept (the way masks are always a safe enforcement mechanism).
     */
    void onIntervalEnd(const IntervalSnapshot &snap) override;

    // --- ControllerHost ---
    PrismController &controller() override { return controller_; }
    const PrismController &controller() const override
    {
        return controller_;
    }

    // --- CachePlane (domains = cores, unit = blocks) ---
    const char *backendName() const override { return "way-mask"; }
    CapacityUnit capacityUnit() const override
    {
        return CapacityUnit::Blocks;
    }
    std::uint32_t domainCount() const override { return num_cores_; }
    std::uint64_t capacityUnits() const override
    {
        return capacity_blocks_;
    }
    std::uint64_t occupancyUnits(std::uint32_t core) const override
    {
        return occupancy_blocks_[core];
    }
    double standAloneHits(std::uint32_t core) const override
    {
        return stand_alone_hits_[core];
    }

    // --- introspection ---
    PrismAllocPolicy &policy() { return *policy_; }

    /**
     * Mean absolute gap |alloc_i − T_i · ways| in ways, averaged over
     * cores, one sample per recompute. A mean above one way means the
     * mask granularity is too coarse to express the targets
     * (prism_doctor's analyzePlane check).
     */
    const RunningStat &wayQuantError() const { return quant_err_; }

    /** Scoped-timer stats for onIntervalEnd(); default = disabled. */
    void setRecomputeSpan(const telemetry::SpanStats &span)
    {
        recompute_span_ = span;
    }

  private:
    std::unique_ptr<PrismAllocPolicy> policy_;
    PrismController controller_;

    RunningStat quant_err_; // |alloc - T*ways| per recompute

    // --- CachePlane view of the last interval ---
    std::uint64_t capacity_blocks_ = 0;
    std::vector<std::uint64_t> occupancy_blocks_;
    std::vector<double> stand_alone_hits_;

    telemetry::SpanStats recompute_span_{};
};

} // namespace prism

#endif // PRISM_PLANE_WAY_MASK_SCHEME_HH
