/**
 * @file
 * O(1) Core-Selection sampler (Vose/Walker alias-table family).
 *
 * The paper's Core-Selection draws a victim core from the eviction
 * distribution E once per replacement. The seed implementation walked
 * the inverse CDF linearly — O(numCores) float compares per miss,
 * the dominant cost on the 32-core machines. This sampler rebuilds a
 * bucketed jump table once per interval (recomputes are ~10^5 times
 * rarer than draws) and answers each draw in O(1) expected time.
 *
 * Unlike a textbook Vose alias table, the bucket layout here is
 * *CDF-aligned*: the table does not re-partition probability mass
 * into equal-weight column pairs, it indexes the untouched partial
 * sums of E. Each of the K (power-of-two, K >= 2n) equal-width
 * buckets stores the first core whose cumulative sum can exceed a
 * uniform draw landing in that bucket; a draw then finishes with
 * ~1.5 expected comparisons against the same partial sums, in the
 * same order, as the reference walk. The payoff is the equivalence
 * contract the test layer enforces: for every u the sampler returns
 * bit-for-bit the core the seed's linear walk would have returned —
 * including quantised, degenerate, residue (sum < 1 after rounding)
 * and pathological non-finite distributions — so every committed
 * figure/bench/trace golden stays byte-identical. See
 * tests/test_core_selection_stats.cc (chi-square + draw-for-draw
 * suites) and docs/BENCHMARKING.md ("Hot path & microbenchmarks").
 */

#ifndef PRISM_PLANE_ALIAS_SAMPLER_HH
#define PRISM_PLANE_ALIAS_SAMPLER_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hh"

namespace prism
{

/** O(1) expected-time sampler over a discrete distribution. */
class AliasSampler
{
  public:
    AliasSampler() = default;

    /**
     * Rebuild the table for @p probs (one entry per core; need not
     * sum to exactly 1 — the reference walk's residue rule applies).
     * O(n) time, no allocation after the first build at a given size.
     */
    void build(std::span<const double> probs);

    /**
     * Map the uniform draw @p u in [0, 1) to a core. Bit-identical
     * to inverseCdfReference(probs, u) for the distribution last
     * built. O(1) expected; O(1) worst-case when only one core has
     * non-zero probability (the single-eligible short circuit).
     */
    CoreId
    sample(double u) const
    {
        if (single_ != invalidCore)
            return single_;
        // K is a power of two, so u * K is exact and the bucket
        // bounds b/K are representable: every core skipped via the
        // guide provably satisfies cum[c] <= b/K <= u.
        const auto b = static_cast<std::uint32_t>(u * bucket_scale_);
        for (std::uint32_t c = guide_[b]; c < n_; ++c)
            if (u < cum_[c])
                return c;
        return residue_;
    }

    /** Cores in the distribution last built (0 before any build). */
    std::uint32_t size() const { return n_; }

    /**
     * The single core holding all probability mass, or invalidCore.
     * When set, sample() short-circuits without touching the table.
     */
    CoreId singleEligible() const { return single_; }

    /** Core returned for draws beyond the last partial sum (the
     *  rounding-residue rule: last core with non-zero probability). */
    CoreId residueCore() const { return residue_; }

    /** Buckets in the guide table (power of two, >= 2n). */
    std::uint32_t buckets() const
    {
        return static_cast<std::uint32_t>(guide_.empty()
                                              ? 0
                                              : guide_.size());
    }

    /**
     * The seed implementation, verbatim: walk the partial sums of
     * @p probs left to right and return the first core whose
     * cumulative sum exceeds @p u; if rounding leaves u beyond the
     * total, return the last core with non-zero probability. The
     * equivalence and statistics suites hold sample() to this
     * function draw for draw.
     */
    static CoreId inverseCdfReference(std::span<const double> probs,
                                      double u);

  private:
    std::vector<double> cum_;          ///< left-to-right partial sums
    std::vector<std::uint32_t> guide_; ///< bucket -> first candidate
    double bucket_scale_ = 0.0;        ///< K as a double (u -> bucket)
    std::uint32_t n_ = 0;
    CoreId single_ = invalidCore;
    CoreId residue_ = 0;
};

} // namespace prism

#endif // PRISM_PLANE_ALIAS_SAMPLER_HH
