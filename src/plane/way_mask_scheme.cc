#include "plane/way_mask_scheme.hh"

#include <cmath>

#include "common/prism_assert.hh"

namespace prism
{

WayMaskScheme::WayMaskScheme(std::uint32_t num_cores,
                             std::uint32_t ways,
                             std::unique_ptr<PrismAllocPolicy> policy,
                             std::uint64_t seed,
                             const ControllerParams &params)
    : WayPartitionScheme(num_cores, ways),
      policy_(std::move(policy)),
      controller_(num_cores, seed, params)
{
    fatalIf(!policy_, "WayMaskScheme: null allocation policy");
    occupancy_blocks_.assign(num_cores_, 0);
    stand_alone_hits_.assign(num_cores_, 0.0);
}

void
WayMaskScheme::onIntervalEnd(const IntervalSnapshot &snap)
{
    PRISM_SPAN(recompute_span_);

    if (controller_.beginRecompute()) {
        const IntervalSnapshot *input = &snap;
        IntervalSnapshot perturbed;
        if (FaultInjector *injector = controller_.faultInjector()) {
            perturbed = snap;
            injector->skewShadow(perturbed,
                                 controller_.intervalIndex());
            input = &perturbed;
        }

        std::vector<double> targets = policy_->computeTargets(*input);

        std::vector<double> c(num_cores_), m(num_cores_);
        for (CoreId i = 0; i < num_cores_; ++i) {
            c[i] = input->occupancyFraction(i);
            m[i] = input->missFraction(i);
        }
        controller_.conditionInputs(c, m);
        controller_.commitRecompute(std::move(targets), c, m,
                                    input->totalBlocks,
                                    input->intervalMisses);

        if (!controller_.fallbackActive()) {
            // Enforcement: quantise the real-valued targets onto the
            // way masks and record how much expressiveness the
            // quantisation cost.
            const std::vector<double> &t = controller_.targets();
            std::vector<std::uint32_t> alloc =
                roundFractionsToWays(t, ways_);
            double err = 0.0;
            for (std::uint32_t i = 0; i < num_cores_; ++i)
                err += std::abs(static_cast<double>(alloc[i]) -
                                t[i] * static_cast<double>(ways_));
            quant_err_.add(err / static_cast<double>(num_cores_));
            setAllocation(std::move(alloc));
        }
    }

    // Refresh the CachePlane view from the (unperturbed) snapshot.
    capacity_blocks_ = snap.totalBlocks;
    for (CoreId i = 0; i < num_cores_; ++i) {
        occupancy_blocks_[i] = snap.cores[i].occupancyBlocks;
        stand_alone_hits_[i] = snap.cores[i].standAloneHits();
    }
}

} // namespace prism
