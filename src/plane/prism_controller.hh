/**
 * @file
 * PrismController: the one PriSM interval control loop, shared by
 * every backend (DESIGN.md, "The CachePlane substrate").
 *
 * Owns targets → hardened Equation 1 → AliasSampler →
 * degraded-mode fallback for a set of partition domains. The
 * backend adapter (PrismScheme over the simulator cache,
 * TenantArbiter over the serving store, WayMaskScheme over per-core
 * way masks) supplies per-interval observations and consumes the
 * resulting eviction distribution — either by sampling victim
 * domains through sampleVictim() or by quantising the targets into
 * an enforcement mechanism of its own.
 *
 * A recompute is three phases so the adapters can keep their exact
 * historical semantics (and byte-identical outputs):
 *
 *   1. beginRecompute()  — advance the interval, honour an injected
 *                          dropped-recompute fault (the previous
 *                          distribution then serves another
 *                          interval);
 *   2. conditionInputs() — apply stale-snapshot and poisoned-input
 *                          faults to the C/M vectors;
 *   3. commitRecompute() — Equation 1, K-bit quantisation,
 *                          quantisation-saturation faults, the
 *                          checked-mode audit/repair/fallback
 *                          ladder, degraded-interval accounting,
 *                          and the sampler rebuild.
 *
 * Degradation (docs/RELIABILITY.md): clamped Equation 1 inputs,
 * stale snapshots and repaired distributions mark the interval
 * degraded; an unrecoverable distribution turns fallbackActive() on
 * until the next successful recompute, telling the backend to defer
 * to its native replacement order.
 */

#ifndef PRISM_PLANE_PRISM_CONTROLLER_HH
#define PRISM_PLANE_PRISM_CONTROLLER_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "fault/fault_injector.hh"
#include "fault/invariant_auditor.hh"
#include "plane/alias_sampler.hh"
#include "plane/eq1.hh"
#include "telemetry/interval_recorder.hh"

namespace prism
{

/** Control-loop knobs shared by every backend. */
struct ControllerParams
{
    /**
     * Bits used to represent each probability; 0 keeps the exact
     * floating-point values (the paper's baseline; 6 bits is shown
     * to be performance-neutral, Figure 12).
     */
    unsigned probBits = 0;
};

/** The shared targets → Equation 1 → sampler → fallback loop. */
class PrismController
{
  public:
    PrismController(std::uint32_t domains, std::uint64_t seed,
                    const ControllerParams &params = {});

    std::uint32_t domainCount() const { return domains_; }

    // --- the per-eviction hot path ---------------------------------

    /**
     * Core-Selection generalised: draw a victim domain according to
     * E. Consumes exactly one uniform and maps it through the O(1)
     * alias-family sampler — draw-for-draw identical to the seed
     * inverse-CDF walk (see AliasSampler).
     */
    std::uint32_t
    sampleVictim()
    {
        return sampler_.sample(rng_.uniform());
    }

    /** The sampler over the current E (test hook). */
    const AliasSampler &sampler() const { return sampler_; }

    /** Eviction distribution in effect. */
    const std::vector<double> &evictionProbs() const { return e_; }

    /** Targets in effect (uniform before the first recompute). */
    const std::vector<double> &targets() const { return targets_; }

    /**
     * Whether the loop is deferring to the backend's native
     * replacement order (the last distribution was unrecoverable).
     */
    bool fallbackActive() const { return fallback_; }

    // --- the three-phase interval recompute ------------------------

    /**
     * Open interval @p +1. @return false when an injected fault
     * dropped the recompute — the caller must keep serving the
     * previous distribution and skip the remaining phases.
     */
    bool beginRecompute();

    /** Interval index of the recompute in progress (1-based). */
    std::uint64_t intervalIndex() const { return interval_idx_; }

    /**
     * Apply stale-snapshot and poisoned-input faults to the
     * observation vectors in place. A no-op without an injector.
     */
    void conditionInputs(std::vector<double> &c,
                         std::vector<double> &m);

    /**
     * Close the recompute: Equation 1 over (@p c, @p targets, @p m)
     * with N = @p capacity_units and W = @p interval_misses, then
     * quantisation, auditing and the sampler rebuild as documented
     * on the class.
     */
    void commitRecompute(std::vector<double> targets,
                         const std::vector<double> &c,
                         const std::vector<double> &m,
                         std::uint64_t capacity_units,
                         std::uint64_t interval_misses);

    /**
     * Overwrite the eviction distribution, applying the configured
     * K-bit quantisation exactly as a recompute would. Test hook for
     * the Core-Selection statistics; @p e must have one entry per
     * domain and sum to ~1.
     */
    void setEvictionProbs(std::span<const double> e);

    // --- robustness: fault injection, auditing, degradation --------

    /** Attach a fault injector (non-owning); null detaches. */
    void setFaultInjector(FaultInjector *injector)
    {
        injector_ = injector;
    }

    FaultInjector *faultInjector() const { return injector_; }

    /** Audit the distribution each recompute and recover in place. */
    void setChecked(bool on) { checked_ = on; }
    bool checked() const { return checked_; }

    std::uint64_t recomputes() const { return recomputes_; }
    std::uint64_t degradedIntervals() const
    {
        return degraded_intervals_;
    }
    std::uint64_t droppedRecomputes() const
    {
        return dropped_recomputes_;
    }
    std::uint64_t fallbackEntries() const { return fallback_entries_; }
    std::uint64_t invariantViolations() const
    {
        return auditor_.violations();
    }
    std::uint64_t clampedInputs() const
    {
        return eq1_stats_.clampedInputs;
    }
    std::uint64_t eq1Fallbacks() const
    {
        return eq1_stats_.fallbackActivations;
    }

    /** Mean/stddev tracker of domain @p d's eviction probability. */
    const RunningStat &probStat(std::uint32_t d) const
    {
        return prob_stats_[d];
    }

    // --- telemetry -------------------------------------------------

    /**
     * Attach an interval recorder (non-owning; null detaches): the
     * controller emits instant events for degraded intervals,
     * dropped recomputes, distribution repairs and fallback entries.
     */
    void setRecorder(telemetry::IntervalRecorder *recorder)
    {
        recorder_ = recorder;
    }

  private:
    void emitEvent(telemetry::EventKind kind, double value = 0.0);

    /**
     * Clamp and renormalise e_ in place after an audit failure.
     * @return false when the distribution is unrecoverable (no
     *         probability mass left) and fallback mode is required.
     */
    bool repairDistribution();

    std::uint32_t domains_;
    Rng rng_;
    ControllerParams params_;

    std::vector<double> e_;       ///< eviction distribution
    AliasSampler sampler_;        ///< O(1) sampler over e_
    std::vector<double> targets_; ///< last computed T_i

    std::uint64_t recomputes_ = 0;
    std::vector<RunningStat> prob_stats_;

    // --- robustness state ---
    FaultInjector *injector_ = nullptr; ///< non-owning; may be null
    InvariantAuditor auditor_;
    bool checked_ = false;
    bool fallback_ = false; ///< defer to the backend this interval
    bool degraded_ = false; ///< recompute-in-progress degradation
    std::uint64_t interval_idx_ = 0;
    std::uint64_t degraded_intervals_ = 0;
    std::uint64_t dropped_recomputes_ = 0;
    std::uint64_t fallback_entries_ = 0;
    Eq1Stats eq1_stats_;
    std::vector<double> prev_c_; ///< last clean C_i (stale fault)
    std::vector<double> prev_m_; ///< last clean M_i (stale fault)

    // --- telemetry ---
    telemetry::IntervalRecorder *recorder_ = nullptr; ///< non-owning
};

} // namespace prism

#endif // PRISM_PLANE_PRISM_CONTROLLER_HH
