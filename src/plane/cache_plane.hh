/**
 * @file
 * CachePlane: the substrate abstraction under the PriSM control loop.
 *
 * PriSM's allocation loop (targets T_i → Equation 1 → eviction
 * distribution E_i) is independent of the mechanism that enforces
 * it. This header names the three-layer split (DESIGN.md, "The
 * CachePlane substrate"):
 *
 *     controller   PrismController — targets → hardened Equation 1 →
 *                  AliasSampler → degraded-mode fallback
 *     plane        CachePlane — what every substrate must answer:
 *                  how many domains, how full is each, how much
 *                  stand-alone reuse did each see, in which unit
 *     backend      the enforcement mechanism — PrismScheme (per-miss
 *                  probabilistic victim cores on the set-associative
 *                  simulator), ShardedStore via TenantArbiter
 *                  (victim-tenant LRU evictions in the serving
 *                  store), WayMaskScheme (CAT-style per-core way
 *                  masks)
 *
 * A "domain" is whatever the plane partitions capacity between:
 * cores in the simulator, tenants in the serving store. Capacity is
 * reported in the plane's native unit — blocks for hardware-like
 * planes, bytes for object stores — and the controller only ever
 * sees fractions plus the unit-count N that Equation 1 scales by.
 */

#ifndef PRISM_PLANE_CACHE_PLANE_HH
#define PRISM_PLANE_CACHE_PLANE_HH

#include <cstdint>

namespace prism
{

class PrismController;

/** The unit a plane counts capacity in. */
enum class CapacityUnit
{
    Blocks, ///< fixed-size cache blocks (simulator, way masks)
    Bytes,  ///< variable-size objects (serving store)
};

const char *capacityUnitName(CapacityUnit unit);

/**
 * What every cache substrate can answer about itself. Implemented by
 * the simulator schemes (domains = cores, unit = blocks) and by the
 * serving store's TenantPlane (domains = tenants, unit = bytes).
 * Occupancy reads must be safe concurrently with the data path; the
 * victim-domain *sampling* hook lives on the controller
 * (PrismController::sampleVictim), and enforcement — actually
 * evicting from the sampled domain, or quantising targets to way
 * masks — is the backend's job.
 */
class CachePlane
{
  public:
    virtual ~CachePlane() = default;

    /** Stable backend id the doctor reports: "sim" | "store" |
     *  "way-mask". */
    virtual const char *backendName() const = 0;

    virtual CapacityUnit capacityUnit() const = 0;

    /** Partition domains sharing this plane (cores / tenants). */
    virtual std::uint32_t domainCount() const = 0;

    /** Total capacity in native units (the paper's N). */
    virtual std::uint64_t capacityUnits() const = 0;

    /** Units domain @p domain holds right now (C_i numerator). */
    virtual std::uint64_t occupancyUnits(std::uint32_t domain)
        const = 0;

    /**
     * Stand-alone reuse estimate for @p domain over the last
     * interval: shadow-tag hits in the simulator, ghost-list shadow
     * hits in the store. 0 when the plane keeps no shadow state.
     */
    virtual double standAloneHits(std::uint32_t domain) const = 0;
};

/**
 * Implemented by every backend that embeds a PrismController, so
 * generic wiring (telemetry recording, fault injection, checked
 * mode, result extraction) reaches the one shared control loop
 * without knowing which backend it is talking to.
 */
class ControllerHost
{
  public:
    virtual ~ControllerHost() = default;

    virtual PrismController &controller() = 0;
    virtual const PrismController &controller() const = 0;
};

} // namespace prism

#endif // PRISM_PLANE_CACHE_PLANE_HH
