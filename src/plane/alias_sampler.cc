#include "plane/alias_sampler.hh"

#include <bit>

namespace prism
{

void
AliasSampler::build(std::span<const double> probs)
{
    n_ = static_cast<std::uint32_t>(probs.size());
    cum_.resize(n_);

    // The partial sums, accumulated exactly as the reference walk
    // does (left to right, one addition per core) so every compare
    // below sees bit-identical values.
    double acc = 0.0;
    std::uint32_t eligible = 0;
    CoreId last_nonzero = invalidCore;
    for (std::uint32_t c = 0; c < n_; ++c) {
        acc += probs[c];
        cum_[c] = acc;
        if (probs[c] > 0.0) {
            ++eligible;
            last_nonzero = c;
        }
    }

    single_ = eligible == 1 ? last_nonzero : invalidCore;
    residue_ = last_nonzero != invalidCore
                   ? last_nonzero
                   : (n_ ? n_ - 1 : invalidCore);

    // Guide table: K equal-width buckets, K the smallest power of
    // two >= 2n (expected walk length <= 1 + n/K <= 1.5). guide_[b]
    // is the first core whose partial sum exceeds the bucket's lower
    // bound b/K. NaN partial sums compare false and simply stop the
    // scan, matching the reference walk's behaviour of falling
    // through to the residue rule.
    const std::uint32_t k =
        n_ ? std::bit_ceil(2 * n_) : std::uint32_t{1};
    guide_.resize(k);
    bucket_scale_ = static_cast<double>(k);
    std::uint32_t c = 0;
    for (std::uint32_t b = 0; b < k; ++b) {
        const double lo = static_cast<double>(b) / bucket_scale_;
        while (c < n_ && cum_[c] <= lo)
            ++c;
        guide_[b] = c;
    }
}

CoreId
AliasSampler::inverseCdfReference(std::span<const double> probs,
                                  double u)
{
    const auto n = static_cast<std::uint32_t>(probs.size());
    double acc = 0.0;
    for (CoreId c = 0; c < n; ++c) {
        acc += probs[c];
        if (u < acc)
            return c;
    }
    for (CoreId c = n; c-- > 0;)
        if (probs[c] > 0.0)
            return c;
    return n ? n - 1 : invalidCore;
}

} // namespace prism
