/**
 * @file
 * Per-interval invariant checks for the PriSM core.
 *
 * PriSM's correctness rests on numeric invariants the paper states
 * but hardware (and this simulator, under fault injection) can
 * violate: the eviction distribution must sum to 1 with every entry
 * finite and in [0,1] (Equation 1 after renormalisation), and the
 * cache's per-core block-ownership counters must agree with the
 * blocks actually resident. The auditor checks them and reports
 * violations as recoverable Status values — the caller decides how to
 * degrade (renormalise, repair counters, or fall back to the
 * underlying replacement policy) instead of aborting.
 */

#ifndef PRISM_FAULT_INVARIANT_AUDITOR_HH
#define PRISM_FAULT_INVARIANT_AUDITOR_HH

#include <cstdint>
#include <span>

#include "common/status.hh"

namespace prism
{

class SharedCache;

/** Checks PriSM invariants; counts the violations it finds. */
class InvariantAuditor
{
  public:
    /** @param epsilon Tolerance on the distribution-sum check. */
    explicit InvariantAuditor(double epsilon = 1e-6)
        : eps_(epsilon)
    {
    }

    /**
     * Check that @p e is a probability distribution: every entry
     * finite and in [0, 1], entries summing to 1 within epsilon.
     */
    Status checkDistribution(std::span<const double> e);

    /**
     * Check that per-core block ownership in @p cache is consistent:
     * counting owners set by set must reproduce the cache's global
     * per-core occupancy counters, and the counters must sum to the
     * number of resident blocks.
     */
    Status checkOwnership(const SharedCache &cache);

    /** Violations found so far (across both checks). */
    std::uint64_t violations() const { return violations_; }

    double epsilon() const { return eps_; }

  private:
    double eps_;
    std::uint64_t violations_ = 0;
};

} // namespace prism

#endif // PRISM_FAULT_INVARIANT_AUDITOR_HH
