/**
 * @file
 * Deterministic, seed-driven fault injection for the PriSM control
 * loop.
 *
 * A FaultInjector perturbs the interval machinery at recompute
 * boundaries according to a schedule parsed from a compact spec
 * string. All randomness (which core to hit, how hard) comes from an
 * explicitly seeded Rng, so a given (spec, seed) pair reproduces the
 * exact same fault sequence run after run — faults are testable, not
 * flaky.
 *
 * Spec grammar (see docs/TESTING.md):
 *
 *   spec    := clause (',' clause)*
 *   clause  := kind '@' period [ '+' phase ] [ '*' attempts ]
 *   kind    := occ | stale | drop | nan | inf | quant | shadow
 *            | job_crash | job_stall | torn_write | alloc_fail
 *
 * Intervals are 1-based. "kind@N" fires at intervals N, 2N, 3N, ...;
 * "kind@N+K" fires at K, K+N, K+2N, ... Example:
 *
 *   nan@4,occ@3+1,drop@10
 *
 * poisons one Equation 1 input with NaN every 4th interval, corrupts
 * an occupancy counter at intervals 1, 4, 7, ... and loses every 10th
 * recompute event.
 *
 * The four exec-level chaos kinds target the sweep execution layer
 * (docs/RELIABILITY.md) instead of the control loop: for them the
 * schedule selects 1-based *job spec indices* rather than intervals,
 * and the optional "*attempts" suffix bounds how many attempts of a
 * selected job fail (default 0 = every attempt, which quarantines
 * the job; "*1" fails only the first attempt, which the retry layer
 * salvages). Example:
 *
 *   job_crash@3*1,alloc_fail@5
 *
 * crashes the first attempt of every 3rd job and every attempt of
 * every 5th job. Exec kinds are only valid in prism_bench's --chaos
 * option; the simulation-level --faults spec rejects them.
 */

#ifndef PRISM_FAULT_FAULT_INJECTOR_HH
#define PRISM_FAULT_FAULT_INJECTOR_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "cache/partition_scheme.hh"
#include "common/rng.hh"
#include "common/status.hh"

namespace prism
{

/** The fault classes the injector can introduce (spec keywords). */
enum class FaultKind : unsigned
{
    CorruptOccupancy, ///< "occ": skew a per-core occupancy counter
    StaleSnapshot,    ///< "stale": reuse the previous interval inputs
    DropRecompute,    ///< "drop": lose one interval recompute event
    PoisonNan,        ///< "nan": NaN into one Equation 1 input
    PoisonInf,        ///< "inf": Inf into one Equation 1 input
    QuantSaturate,    ///< "quant": saturate the probability encoding
    ShadowSkew,       ///< "shadow": mis-scale shadow-tag estimates

    // --- exec-level chaos (sweep execution layer; schedules select
    // --- job spec indices, not intervals) ---
    JobCrash,  ///< "job_crash": throw from inside the job attempt
    JobStall,  ///< "job_stall": hang the attempt (deadline target)
    TornWrite, ///< "torn_write": truncate a checkpoint flush
    AllocFail, ///< "alloc_fail": inject std::bad_alloc into the job
};

inline constexpr unsigned numFaultKinds = 11;

/** Spec keyword for @p kind ("occ", "nan", ...). */
const char *faultKindName(FaultKind kind);

/** Whether @p kind targets the exec layer rather than the sim. */
bool isExecFaultKind(FaultKind kind);

/** One parsed clause of a fault spec: kind@period[+phase][*attempts]. */
struct FaultClause
{
    FaultKind kind = FaultKind::CorruptOccupancy;
    std::uint64_t period = 1; ///< fire every this many intervals
    std::uint64_t phase = 0;  ///< first firing interval; 0 = period
    /**
     * Exec kinds only: number of failing attempts per selected job
     * (0 = every attempt). Simulation kinds ignore it.
     */
    std::uint64_t attempts = 0;

    /** Whether this clause fires at 1-based interval @p interval. */
    bool
    firesAt(std::uint64_t interval) const
    {
        const std::uint64_t first = phase ? phase : period;
        return interval >= first && (interval - first) % period == 0;
    }

    /** Exec kinds: whether 1-based attempt @p attempt still fails. */
    bool
    firesAtAttempt(std::uint64_t attempt) const
    {
        return attempts == 0 || attempt <= attempts;
    }
};

/**
 * Parse @p spec into clauses. Returns an error Status naming the
 * offending clause on malformed input; @p out is only written on
 * success.
 */
Status parseFaultSpec(const std::string &spec,
                      std::vector<FaultClause> &out);

/** Schedules and applies faults; counts every injection. */
class FaultInjector
{
  public:
    FaultInjector(std::vector<FaultClause> clauses, std::uint64_t seed);

    /** Whether any clause of @p kind fires at @p interval. */
    bool fires(FaultKind kind, std::uint64_t interval) const;

    // --- appliers: each mutates its target and counts the injection
    // --- when (and only when) a clause of its kind fires.

    /**
     * Corrupt one core's occupancy counter: zero it, halve it or
     * overcount it by a quarter of the cache. @p occupancy is the
     * cache's live counter array.
     */
    bool corruptOccupancy(std::vector<std::uint64_t> &occupancy,
                          std::uint64_t total_blocks,
                          std::uint64_t interval);

    /**
     * Mis-scale one core's shadow-tag estimates in @p snap (lost
     * counts, 4x overcount or sign corruption).
     */
    bool skewShadow(IntervalSnapshot &snap, std::uint64_t interval);

    /**
     * Poison one entry of the Equation 1 input vectors with NaN
     * (PoisonNan) and/or +-Inf (PoisonInf).
     */
    bool poisonInputs(std::vector<double> &occ_frac,
                      std::vector<double> &miss_frac,
                      std::uint64_t interval);

    /** The caller should reuse the previous interval's inputs. */
    bool staleSnapshot(std::uint64_t interval);

    /** The caller should skip this recompute entirely. */
    bool dropRecompute(std::uint64_t interval);

    /**
     * Saturate the encoded distribution: scale every entry up by a
     * random gain and clamp at 1, as a fixed-point pipeline whose
     * accumulator overflowed would.
     */
    bool saturateQuantisation(std::vector<double> &e,
                              std::uint64_t interval);

    /** Total injections so far, across all kinds. */
    std::uint64_t injected() const { return injected_; }

    /** Injections of one kind. */
    std::uint64_t
    injectedOf(FaultKind kind) const
    {
        return per_kind_[static_cast<unsigned>(kind)];
    }

  private:
    void
    count(FaultKind kind)
    {
        ++injected_;
        ++per_kind_[static_cast<unsigned>(kind)];
    }

    std::vector<FaultClause> clauses_;
    Rng rng_;
    std::uint64_t injected_ = 0;
    std::array<std::uint64_t, numFaultKinds> per_kind_{};
};

} // namespace prism

#endif // PRISM_FAULT_FAULT_INJECTOR_HH
