#include "fault/fault_injector.hh"

#include <charconv>
#include <limits>

namespace prism
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::CorruptOccupancy:
        return "occ";
      case FaultKind::StaleSnapshot:
        return "stale";
      case FaultKind::DropRecompute:
        return "drop";
      case FaultKind::PoisonNan:
        return "nan";
      case FaultKind::PoisonInf:
        return "inf";
      case FaultKind::QuantSaturate:
        return "quant";
      case FaultKind::ShadowSkew:
        return "shadow";
      case FaultKind::JobCrash:
        return "job_crash";
      case FaultKind::JobStall:
        return "job_stall";
      case FaultKind::TornWrite:
        return "torn_write";
      case FaultKind::AllocFail:
        return "alloc_fail";
    }
    return "?";
}

bool
isExecFaultKind(FaultKind kind)
{
    switch (kind) {
      case FaultKind::JobCrash:
      case FaultKind::JobStall:
      case FaultKind::TornWrite:
      case FaultKind::AllocFail:
        return true;
      default:
        return false;
    }
}

namespace
{

bool
parseKind(const std::string &word, FaultKind &out)
{
    for (unsigned k = 0; k < numFaultKinds; ++k) {
        const auto kind = static_cast<FaultKind>(k);
        if (word == faultKindName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

bool
parseNumber(const std::string &text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    const char *end = text.data() + text.size();
    const auto res = std::from_chars(text.data(), end, out);
    return res.ec == std::errc() && res.ptr == end;
}

} // namespace

Status
parseFaultSpec(const std::string &spec, std::vector<FaultClause> &out)
{
    std::vector<FaultClause> clauses;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string clause = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (clause.empty()) {
            if (spec.empty())
                break;
            return Status::error("fault spec: empty clause in '" +
                                 spec + "'");
        }

        const std::size_t at = clause.find('@');
        if (at == std::string::npos)
            return Status::error(
                "fault spec clause '" + clause +
                "': expected kind@period[+phase][*attempts]");

        FaultClause fc;
        if (!parseKind(clause.substr(0, at), fc.kind))
            return Status::error("fault spec clause '" + clause +
                                 "': unknown fault kind '" +
                                 clause.substr(0, at) +
                                 "' (occ|stale|drop|nan|inf|quant|"
                                 "shadow|job_crash|job_stall|"
                                 "torn_write|alloc_fail)");

        std::string sched = clause.substr(at + 1);
        const std::size_t star = sched.find('*');
        if (star != std::string::npos) {
            const std::string attempts_s = sched.substr(star + 1);
            if (!isExecFaultKind(fc.kind))
                return Status::error(
                    "fault spec clause '" + clause +
                    "': '*attempts' is only valid for exec-level "
                    "kinds");
            if (!parseNumber(attempts_s, fc.attempts))
                return Status::error("fault spec clause '" + clause +
                                     "': bad attempt count '" +
                                     attempts_s + "'");
            sched = sched.substr(0, star);
        }
        const std::size_t plus = sched.find('+');
        std::string period_s = sched.substr(0, plus);
        if (!parseNumber(period_s, fc.period) || fc.period == 0)
            return Status::error("fault spec clause '" + clause +
                                 "': bad period '" + period_s + "'");
        if (plus != std::string::npos) {
            const std::string phase_s = sched.substr(plus + 1);
            if (!parseNumber(phase_s, fc.phase) || fc.phase == 0)
                return Status::error("fault spec clause '" + clause +
                                     "': bad phase '" + phase_s + "'");
        }
        clauses.push_back(fc);
    }
    if (clauses.empty())
        return Status::error("fault spec: no clauses in '" + spec +
                             "'");
    out = std::move(clauses);
    return Status();
}

FaultInjector::FaultInjector(std::vector<FaultClause> clauses,
                             std::uint64_t seed)
    : clauses_(std::move(clauses)), rng_(seed)
{
}

bool
FaultInjector::fires(FaultKind kind, std::uint64_t interval) const
{
    for (const FaultClause &c : clauses_)
        if (c.kind == kind && c.firesAt(interval))
            return true;
    return false;
}

bool
FaultInjector::corruptOccupancy(std::vector<std::uint64_t> &occupancy,
                                std::uint64_t total_blocks,
                                std::uint64_t interval)
{
    if (occupancy.empty() || !fires(FaultKind::CorruptOccupancy, interval))
        return false;
    const std::size_t core = rng_.below(occupancy.size());
    switch (rng_.below(3)) {
      case 0: // lost counter
        occupancy[core] = 0;
        break;
      case 1: // overcount by a quarter of the cache
        occupancy[core] += total_blocks / 4 + 1;
        break;
      default: // dropped increments
        occupancy[core] /= 2;
        break;
    }
    count(FaultKind::CorruptOccupancy);
    return true;
}

bool
FaultInjector::skewShadow(IntervalSnapshot &snap, std::uint64_t interval)
{
    if (snap.cores.empty() || !fires(FaultKind::ShadowSkew, interval))
        return false;
    const std::size_t core = rng_.below(snap.cores.size());
    // Lost samples, 4x overcount, or sign corruption.
    static constexpr double factors[] = {0.0, 4.0, -1.0};
    const double f = factors[rng_.below(3)];
    auto &cs = snap.cores[core];
    cs.shadowMisses *= f;
    for (double &h : cs.shadowHitsAtPosition)
        h *= f;
    count(FaultKind::ShadowSkew);
    return true;
}

bool
FaultInjector::poisonInputs(std::vector<double> &occ_frac,
                            std::vector<double> &miss_frac,
                            std::uint64_t interval)
{
    if (occ_frac.empty())
        return false;
    bool any = false;
    if (fires(FaultKind::PoisonNan, interval)) {
        std::vector<double> &v =
            rng_.chance(0.5) ? occ_frac : miss_frac;
        v[rng_.below(v.size())] =
            std::numeric_limits<double>::quiet_NaN();
        count(FaultKind::PoisonNan);
        any = true;
    }
    if (fires(FaultKind::PoisonInf, interval)) {
        std::vector<double> &v =
            rng_.chance(0.5) ? occ_frac : miss_frac;
        const double inf = std::numeric_limits<double>::infinity();
        v[rng_.below(v.size())] = rng_.chance(0.5) ? inf : -inf;
        count(FaultKind::PoisonInf);
        any = true;
    }
    return any;
}

bool
FaultInjector::staleSnapshot(std::uint64_t interval)
{
    if (!fires(FaultKind::StaleSnapshot, interval))
        return false;
    count(FaultKind::StaleSnapshot);
    return true;
}

bool
FaultInjector::dropRecompute(std::uint64_t interval)
{
    if (!fires(FaultKind::DropRecompute, interval))
        return false;
    count(FaultKind::DropRecompute);
    return true;
}

bool
FaultInjector::saturateQuantisation(std::vector<double> &e,
                                    std::uint64_t interval)
{
    if (e.empty() || !fires(FaultKind::QuantSaturate, interval))
        return false;
    const double gain = 4.0 + static_cast<double>(rng_.below(5));
    for (double &v : e) {
        v *= gain;
        if (v > 1.0)
            v = 1.0;
    }
    count(FaultKind::QuantSaturate);
    return true;
}

} // namespace prism
