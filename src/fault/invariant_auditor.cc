#include "fault/invariant_auditor.hh"

#include <cmath>
#include <string>
#include <vector>

#include "cache/shared_cache.hh"

namespace prism
{

Status
InvariantAuditor::checkDistribution(std::span<const double> e)
{
    double sum = 0.0;
    for (std::size_t i = 0; i < e.size(); ++i) {
        const double v = e[i];
        if (!std::isfinite(v)) {
            ++violations_;
            return Status::error("distribution: E[" +
                                 std::to_string(i) +
                                 "] is not finite");
        }
        if (v < -eps_ || v > 1.0 + eps_) {
            ++violations_;
            return Status::error("distribution: E[" +
                                 std::to_string(i) + "] = " +
                                 std::to_string(v) +
                                 " outside [0, 1]");
        }
        sum += v;
    }
    if (std::abs(sum - 1.0) > eps_) {
        ++violations_;
        return Status::error("distribution: sum(E) = " +
                             std::to_string(sum) + ", expected 1");
    }
    return Status();
}

Status
InvariantAuditor::checkOwnership(const SharedCache &cache)
{
    const std::uint32_t cores = cache.config().numCores;
    std::vector<std::uint64_t> counted(cores, 0);
    std::uint64_t resident = 0;
    const BlockArrays &blocks = cache.blockArrays();
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        if (!blocks.valid[i])
            continue;
        ++resident;
        const CoreId owner = blocks.owner[i];
        if (owner >= cores) {
            ++violations_;
            return Status::error("ownership: resident block owned by "
                                 "invalid core " +
                                 std::to_string(owner));
        }
        ++counted[owner];
    }

    std::uint64_t global = 0;
    for (CoreId c = 0; c < cores; ++c) {
        global += cache.occupancy(c);
        if (counted[c] != cache.occupancy(c)) {
            ++violations_;
            return Status::error(
                "ownership: core " + std::to_string(c) + " counter " +
                std::to_string(cache.occupancy(c)) + " != " +
                std::to_string(counted[c]) + " blocks counted in sets");
        }
    }
    if (global != resident) {
        ++violations_;
        return Status::error("ownership: counters sum to " +
                             std::to_string(global) + " but " +
                             std::to_string(resident) +
                             " blocks are resident");
    }
    return Status();
}

} // namespace prism
