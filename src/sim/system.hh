/**
 * @file
 * The multicore system simulator.
 *
 * Trace-driven timing model: each core interleaves bursts of
 * non-memory instructions (costing CPI_ideal cycles each) with memory
 * accesses that traverse its private L1, the shared LLC and — on an
 * LLC miss — the DRAM model. Cores advance on their own clocks and
 * are scheduled in global time order; a core that exhausts its
 * instruction budget keeps generating cache pressure (as in the
 * paper's methodology, which reports statistics only for each
 * program's first N instructions) until every core has finished.
 *
 * The system drives the cache's interval machinery: at every
 * interval boundary it augments the snapshot with per-core CPI
 * statistics so that timing-aware allocation policies (PriSM-F,
 * PriSM-Q) see the performance counters the paper assumes.
 */

#ifndef PRISM_SIM_SYSTEM_HH
#define PRISM_SIM_SYSTEM_HH

#include <iosfwd>
#include <memory>
#include <vector>

#include "cache/l1_cache.hh"
#include "common/cancel.hh"
#include "common/rng.hh"
#include "cache/partition_scheme.hh"
#include "cache/shared_cache.hh"
#include "sim/machine_config.hh"
#include "sim/memory_system.hh"
#include "telemetry/interval_recorder.hh"
#include "workload/profiles.hh"
#include "workload/suites.hh"

namespace prism
{

/** Per-core outcome of a simulation. */
struct CoreResult
{
    std::uint64_t instructions = 0; ///< measured instructions
    double cycles = 0.0;            ///< cycles to retire them
    double llcStallCycles = 0.0;    ///< DRAM stall within those
    std::uint64_t llcHits = 0;
    std::uint64_t llcMisses = 0;
    /** LLC occupancy fraction when the core finished its budget. */
    double occupancyAtFinish = 0.0;

    double
    ipc() const
    {
        return cycles > 0.0 ? static_cast<double>(instructions) / cycles
                            : 0.0;
    }
};

/** Whole-run outcome. */
struct SystemResult
{
    std::vector<CoreResult> cores;
    std::uint64_t intervals = 0; ///< allocation recomputations
};

/** One simulated machine running one multi-programmed workload. */
class System
{
  public:
    /**
     * @param config Machine description.
     * @param workload Benchmark mix (size must equal numCores).
     * @param scheme Cache-management scheme (may be null for the
     *        unmanaged baseline); not owned.
     */
    System(const MachineConfig &config, const Workload &workload,
           PartitionScheme *scheme);

    /** Run warm-up plus the measured phase; returns per-core stats. */
    SystemResult run();

    SharedCache &llc() { return llc_; }
    const MemorySystem &mem() const { return mem_; }

    /**
     * Dump a hierarchical statistics report (cache, memory system,
     * per-core timing) to @p os. Intended for post-run inspection
     * (the CLI's --stats flag); purely observational.
     */
    void dumpStats(std::ostream &os) const;

    /**
     * The same statistics as dumpStats() as a "prism-stats-v1" JSON
     * document (the CLI's --stats-json flag). Deterministic: written
     * through JsonWriter, structure mirrors the text counter tree.
     */
    void dumpStatsJson(std::ostream &os) const;

    /**
     * Attach an interval recorder (non-owning; null detaches): the
     * system then captures one IntervalSample per allocation
     * interval — per-core {C_i, T_i, E_i, M_i, hits, IPC} — and
     * emits CoreFinish / OwnershipRepair instant events.
     */
    void setRecorder(telemetry::IntervalRecorder *recorder);

    /**
     * Attach a cancellation token (non-owning; null detaches). run()
     * polls it every few thousand scheduler steps and throws
     * CancelledError once it fires, leaving the run unfinished; the
     * caller discards the System. Cooperative only: a token cannot
     * interrupt a single step, so cancellation latency is one poll
     * window of simulated progress, never a torn simulator state.
     */
    void setCancelToken(const CancelToken *cancel) { cancel_ = cancel; }

  private:
    struct Core
    {
        const BenchmarkProfile *profile;
        std::unique_ptr<AccessGenerator> gen;
        L1Cache l1;
        Rng store_rng; ///< classifies accesses as loads/stores
        double cycle = 0.0;
        double instr_carry = 0.0;
        std::uint64_t instructions = 0;
        double llc_stall = 0.0;
        std::uint64_t llc_hits = 0;
        std::uint64_t llc_misses = 0;
        bool finished = false;
        double finish_cycle = 0.0;
        double finish_occupancy = 0.0;
        // Interval bookkeeping (previous totals at last boundary).
        std::uint64_t prev_instr = 0;
        double prev_cycle = 0.0;
        double prev_stall = 0.0;
    };

    /** Advance @p core by one access segment. */
    void step(CoreId id);

    /** Reset measured statistics after warm-up. */
    void resetStats();

    void fillTiming(IntervalSnapshot &snap);

    /** Interval-observer target: build and record one sample. */
    void recordInterval(const IntervalSnapshot &snap,
                        std::uint64_t interval);

    MachineConfig config_;
    std::string workload_name_;
    SharedCache llc_;
    MemorySystem mem_;
    std::vector<Core> cores_;
    PartitionScheme *scheme_;

    /** Throw CancelledError when the attached token fired. */
    void
    pollCancel()
    {
        // Poll every 8192 steps: frequent enough for sub-second
        // cancellation latency, rare enough to stay invisible in
        // profiles.
        if (cancel_ && (++cancel_check_ & 0x1FFFu) == 0)
            cancel_->poll();
    }

    telemetry::IntervalRecorder *recorder_ = nullptr; ///< non-owning
    const CancelToken *cancel_ = nullptr;             ///< non-owning
    std::uint64_t cancel_check_ = 0;
    std::uint64_t seen_ownership_repairs_ = 0;
};

} // namespace prism

#endif // PRISM_SIM_SYSTEM_HH
