#include "sim/runner.hh"

#include "common/prism_assert.hh"
#include "fault/fault_injector.hh"
#include "plane/way_mask_scheme.hh"
#include "policies/pipp.hh"
#include "policies/tadip.hh"
#include "policies/vantage.hh"
#include "policies/way_partition.hh"
#include "prism/alloc_fair.hh"
#include "prism/alloc_hitmax.hh"
#include "prism/alloc_lookahead.hh"
#include "prism/alloc_qos.hh"
#include "prism/hitmax_waypart.hh"
#include "prism/prism_scheme.hh"
#include "sim/metrics.hh"

namespace prism
{

const char *
schemeName(SchemeKind kind)
{
    switch (kind) {
      case SchemeKind::Baseline:
        return "Baseline";
      case SchemeKind::UCP:
        return "UCP";
      case SchemeKind::PIPP:
        return "PIPP";
      case SchemeKind::TADIP:
        return "TA-DIP";
      case SchemeKind::FairWP:
        return "FairWP";
      case SchemeKind::Vantage:
        return "Vantage";
      case SchemeKind::PrismH:
        return "PriSM-H";
      case SchemeKind::PrismF:
        return "PriSM-F";
      case SchemeKind::PrismQ:
        return "PriSM-Q";
      case SchemeKind::PrismLA:
        return "PriSM-LA";
      case SchemeKind::PrismWM:
        return "PriSM-WM";
      case SchemeKind::WPHitMax:
        return "WP-HitMax";
      case SchemeKind::StaticWP:
        return "StaticWP";
    }
    return "?";
}

bool
schemeFromName(std::string_view name, SchemeKind &kind)
{
    for (const SchemeKind k :
         {SchemeKind::Baseline, SchemeKind::UCP, SchemeKind::PIPP,
          SchemeKind::TADIP, SchemeKind::FairWP, SchemeKind::Vantage,
          SchemeKind::PrismH, SchemeKind::PrismF, SchemeKind::PrismQ,
          SchemeKind::PrismLA, SchemeKind::PrismWM,
          SchemeKind::WPHitMax, SchemeKind::StaticWP}) {
        if (name == schemeName(k)) {
            kind = k;
            return true;
        }
    }
    if (name == "LRU") {
        kind = SchemeKind::Baseline;
        return true;
    }
    return false;
}

bool
replFromName(std::string_view name, ReplKind &kind)
{
    for (const ReplKind k :
         {ReplKind::LRU, ReplKind::TimestampLRU, ReplKind::DIP,
          ReplKind::RRIP, ReplKind::Random}) {
        if (name == replKindName(k)) {
            kind = k;
            return true;
        }
    }
    return false;
}

double
RunResult::antt() const
{
    // Quarantined sweep jobs carry an empty (default) result; report
    // NaN instead of tripping the metric layer's input validation.
    if (ipc.empty() || ipcStandalone.empty())
        return std::numeric_limits<double>::quiet_NaN();
    return prism::antt(ipcStandalone, ipc);
}

double
RunResult::fairness() const
{
    if (ipc.empty() || ipcStandalone.empty())
        return std::numeric_limits<double>::quiet_NaN();
    return prism::fairness(ipcStandalone, ipc);
}

double
RunResult::ipcThroughput() const
{
    return prism::ipcThroughput(ipc);
}

std::unique_ptr<PartitionScheme>
Runner::makeScheme(SchemeKind kind, const SchemeOptions &options,
                   double qos_target_ipc) const
{
    const std::uint32_t cores = config_.numCores;
    const std::uint32_t ways = config_.llcWays;
    const std::uint64_t seed = config_.seed ^ 0xDEC0DE5Cu;
    const PrismParams prism_params{options.probBits};

    switch (kind) {
      case SchemeKind::Baseline:
        return nullptr;
      case SchemeKind::UCP:
        return std::make_unique<UcpScheme>(cores, ways);
      case SchemeKind::PIPP:
        return std::make_unique<PippScheme>(cores, ways, seed);
      case SchemeKind::TADIP:
        return std::make_unique<TadipScheme>(cores, seed);
      case SchemeKind::FairWP:
        return std::make_unique<KimFairScheme>(cores, ways);
      case SchemeKind::Vantage: {
        VantageParams vp;
        vp.unitsPerWay = options.vantageUnitsPerWay;
        return std::make_unique<VantageScheme>(
            cores, config_.llcConfig().numBlocks(), ways, vp);
      }
      case SchemeKind::PrismH:
        return std::make_unique<PrismScheme>(
            cores, std::make_unique<HitMaxPolicy>(), seed, prism_params);
      case SchemeKind::PrismF:
        return std::make_unique<PrismScheme>(
            cores, std::make_unique<FairPolicy>(), seed, prism_params);
      case SchemeKind::PrismQ:
        return std::make_unique<PrismScheme>(
            cores, std::make_unique<QosPolicy>(qos_target_ipc), seed,
            prism_params);
      case SchemeKind::PrismLA:
        return std::make_unique<PrismScheme>(
            cores,
            std::make_unique<LookaheadPolicy>(
                options.vantageUnitsPerWay),
            seed, prism_params);
      case SchemeKind::PrismWM:
        return std::make_unique<WayMaskScheme>(
            cores, ways, std::make_unique<HitMaxPolicy>(), seed,
            ControllerParams{.probBits = options.probBits});
      case SchemeKind::WPHitMax:
        return std::make_unique<HitMaxWayScheme>(cores, ways);
      case SchemeKind::StaticWP:
        return std::make_unique<StaticWayScheme>(cores, ways);
    }
    panic("Runner::makeScheme: unknown scheme");
}

double
Runner::standaloneIpc(const std::string &benchmark,
                      const CancelToken *cancel)
{
    // The memo is keyed by the solo machine fingerprint so Runners
    // with different configurations can share one memo without
    // collisions, and concurrent requests compute each reference
    // simulation exactly once.
    return standalone_memo_->getOrCompute(
        solo_fingerprint_ + "|" + benchmark, [&]() {
            // Same machine, one core, whole LLC, unmanaged
            // replacement. Keep the memory system of the shared
            // machine so the stand-alone run sees identical DRAM
            // latency (just no contention).
            MachineConfig solo = config_;
            solo.numCores = 1;

            Workload w;
            w.name = "solo:" + benchmark;
            w.benchmarks = {benchmark};

            System system(solo, w, nullptr);
            system.setCancelToken(cancel);
            const SystemResult res = system.run();
            return res.cores[0].ipc();
        });
}

RunResult
Runner::run(const Workload &workload, SchemeKind kind,
            const SchemeOptions &options)
{
    {
        const std::vector<std::string> errors = config_.validate();
        if (!errors.empty()) {
            std::string joined = "Runner: invalid machine configuration:";
            for (const std::string &e : errors)
                joined += "\n  - " + e;
            fatal(joined);
        }
    }
    fatalIf(workload.benchmarks.size() != config_.numCores,
            "Runner::run: workload does not match machine core count");

    RunResult out;
    out.workload = workload.name;
    out.scheme = schemeName(kind);
    out.benchmarks = workload.benchmarks;

    for (const auto &bench : workload.benchmarks)
        out.ipcStandalone.push_back(
            standaloneIpc(bench, options.cancel));

    // PriSM-Q pins its IPC floor to core 0's stand-alone IPC.
    const double qos_target =
        options.qosTargetFrac * out.ipcStandalone[0];

    std::unique_ptr<FaultInjector> injector;
    if (!options.faultSpec.empty()) {
        std::vector<FaultClause> clauses;
        const Status st = parseFaultSpec(options.faultSpec, clauses);
        fatalIf(!st.ok(), st.message());
        for (const FaultClause &c : clauses)
            fatalIf(isExecFaultKind(c.kind),
                    std::string("Runner::run: exec-level fault kind '") +
                        faultKindName(c.kind) +
                        "' is only valid in the sweep chaos spec "
                        "(prism_bench --chaos)");
        injector = std::make_unique<FaultInjector>(
            std::move(clauses), config_.seed ^ 0xFA017EC7ULL);
    }

    auto scheme = makeScheme(kind, options, qos_target);
    // Every PriSM-family scheme hosts the one shared controller; the
    // generic wiring below reaches it through ControllerHost and only
    // backend-specific statistics go through the concrete types.
    auto *host = dynamic_cast<ControllerHost *>(scheme.get());
    auto *prism_scheme = dynamic_cast<PrismScheme *>(scheme.get());
    auto *wm_scheme = dynamic_cast<WayMaskScheme *>(scheme.get());
    if (host) {
        host->controller().setChecked(options.checked);
        host->controller().setFaultInjector(injector.get());
    }

    std::shared_ptr<telemetry::IntervalRecorder> recorder;
    if (options.telemetry.enabled)
        recorder = std::make_shared<telemetry::IntervalRecorder>(
            options.telemetry.capacity);

    System system(config_, workload, scheme.get());
    system.setCancelToken(options.cancel);
    system.llc().setChecked(options.checked);
    if (recorder) {
        system.setRecorder(recorder.get());
        if (host)
            host->controller().setRecorder(recorder.get());
    }
    if (options.telemetry.enabled && options.telemetry.metrics) {
        telemetry::MetricsRegistry &m = *options.telemetry.metrics;
        system.llc().setAccessSpan(m.span("llc.access"));
        if (prism_scheme)
            prism_scheme->setRecomputeSpan(m.span("prism.recompute"));
        else if (wm_scheme)
            wm_scheme->setRecomputeSpan(m.span("prism.recompute"));
    }
    if (injector) {
        FaultInjector *inj = injector.get();
        system.llc().setOccupancyFaultHook(
            [inj](std::vector<std::uint64_t> &occ,
                  std::uint64_t total_blocks, std::uint64_t interval) {
                return inj->corruptOccupancy(occ, total_blocks,
                                             interval);
            });
    }

    const SystemResult res = system.run();
    if (options.statsSink)
        system.dumpStats(*options.statsSink);
    if (options.statsJsonSink)
        system.dumpStatsJson(*options.statsJsonSink);
    out.recorder = recorder;

    out.intervals = res.intervals;
    for (CoreId c = 0; c < config_.numCores; ++c) {
        out.ipc.push_back(res.cores[c].ipc());
        out.llcMisses.push_back(res.cores[c].llcMisses);
        out.llcHits.push_back(res.cores[c].llcHits);
        out.occupancyAtFinish.push_back(res.cores[c].occupancyAtFinish);
    }

    out.invariantViolations = system.llc().invariantViolations();
    out.ownershipRepairs = system.llc().ownershipRepairs();
    if (injector)
        out.faultsInjected = injector->injected();

    if (host) {
        const PrismController &ctl = host->controller();
        out.recomputes = ctl.recomputes();
        out.degradedIntervals = ctl.degradedIntervals();
        out.invariantViolations += ctl.invariantViolations();
        out.clampedEq1Inputs = ctl.clampedInputs();
        out.droppedRecomputes = ctl.droppedRecomputes();
        out.fallbackEntries = ctl.fallbackEntries();
        for (CoreId c = 0; c < config_.numCores; ++c) {
            out.evProbMean.push_back(ctl.probStat(c).mean());
            out.evProbStddev.push_back(ctl.probStat(c).stddev());
        }
    }
    if (prism_scheme)
        out.victimlessFraction = prism_scheme->victimlessFraction();
    if (wm_scheme) {
        out.plane = wm_scheme->backendName();
        out.wayQuantError = wm_scheme->wayQuantError().mean();
    }
    return out;
}

} // namespace prism
