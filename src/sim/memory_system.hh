/**
 * @file
 * DRAM and memory-controller model.
 *
 * Each LLC miss is routed by address hash to one of the controllers;
 * a request observes the fixed DRAM access latency plus queueing
 * delay behind earlier requests at the same controller (each request
 * occupies the controller for a service interval — the bandwidth
 * model). More cores share more controllers per the paper's Table 2,
 * so memory contention grows with core count as it does there.
 */

#ifndef PRISM_SIM_MEMORY_SYSTEM_HH
#define PRISM_SIM_MEMORY_SYSTEM_HH

#include <cstdint>
#include <vector>

#include "common/prism_assert.hh"
#include "common/types.hh"

namespace prism
{

/** Multi-controller DRAM with FCFS queueing per controller. */
class MemorySystem
{
  public:
    /**
     * @param controllers Number of memory controllers.
     * @param service_cycles Controller occupancy per request.
     * @param dram_cycles Access latency of the DRAM itself.
     */
    MemorySystem(std::uint32_t controllers, double service_cycles,
                 double dram_cycles)
        : service_(service_cycles), dram_(dram_cycles)
    {
        fatalIf(controllers == 0, "MemorySystem: zero controllers");
        busy_until_.assign(controllers, 0.0);
    }

    /**
     * Issue a request at time @p now; returns its total latency in
     * cycles (queueing + DRAM access).
     */
    double
    request(Addr addr, double now)
    {
        const std::size_t ctl =
            (addr * 0x9E3779B97F4A7C15ULL >> 32) % busy_until_.size();
        const double start =
            busy_until_[ctl] > now ? busy_until_[ctl] : now;
        busy_until_[ctl] = start + service_;
        ++requests_;
        total_queue_ += start - now;
        return (start - now) + dram_;
    }

    /**
     * Queue a write-back at time @p now: occupies the controller for
     * a service slot but is off the load critical path (no latency
     * returned).
     */
    void
    writeback(Addr addr, double now)
    {
        const std::size_t ctl =
            (addr * 0x9E3779B97F4A7C15ULL >> 32) % busy_until_.size();
        const double start =
            busy_until_[ctl] > now ? busy_until_[ctl] : now;
        busy_until_[ctl] = start + service_;
        ++writebacks_;
    }

    std::uint64_t requests() const { return requests_; }

    std::uint64_t writebacks() const { return writebacks_; }

    /** Mean queueing delay per request. */
    double
    meanQueueCycles() const
    {
        return requests_ ? total_queue_ / requests_ : 0.0;
    }

  private:
    double service_;
    double dram_;
    std::vector<double> busy_until_;
    std::uint64_t requests_ = 0;
    std::uint64_t writebacks_ = 0;
    double total_queue_ = 0.0;
};

} // namespace prism

#endif // PRISM_SIM_MEMORY_SYSTEM_HH
