/**
 * @file
 * Machine configuration (the paper's Table 2).
 *
 * Core count selects the paper's LLC geometry: 4MB/16-way for 4 and 8
 * cores, 8MB/32-way for 16 cores, 16MB/64-way for 32 cores, with
 * 1/2/4/8 memory controllers. Timing folds the paper's 4-wide OoO
 * cores into the CPI decomposition its own fairness policy uses:
 * CPI = CPI_ideal + CPI_llc (see DESIGN.md, "Substitutions").
 */

#ifndef PRISM_SIM_MACHINE_CONFIG_HH
#define PRISM_SIM_MACHINE_CONFIG_HH

#include <charconv>
#include <cstdint>
#include <string>
#include <vector>

#include "cache/repl_policy.hh"
#include "cache/shared_cache.hh"

namespace prism
{

/** Full description of the simulated machine and run lengths. */
struct MachineConfig
{
    std::uint32_t numCores = 4;

    // --- shared LLC ---
    std::uint64_t llcBytes = 4ull << 20;
    std::uint32_t llcWays = 16;
    std::uint32_t blockBytes = 64;
    ReplKind repl = ReplKind::LRU;

    /** Interval W in misses; 0 = the paper default (W == N blocks). */
    std::uint64_t intervalMisses = 0;
    std::uint32_t shadowSampling = 32;

    // --- private L1 per core ---
    std::uint64_t l1Bytes = 64ull << 10;
    std::uint32_t l1Ways = 2;

    // --- timing (cycles) ---
    /** Charged on every L1 miss (LLC lookup; part of CPI_ideal). */
    double llcHitCycles = 10.0;
    /** DRAM access latency on an LLC miss (the CPI_llc source). */
    double dramCycles = 250.0;
    /** Controller occupancy per request (bandwidth model). */
    double ctrlServiceCycles = 12.0;
    /** Memory controllers; 0 = auto (max(1, cores/4)). */
    std::uint32_t memControllers = 0;

    // --- run lengths ---
    std::uint64_t instrBudget = 2'000'000;
    std::uint64_t warmupInstr = 500'000;

    std::uint64_t seed = 0x5EED0001ULL;

    /** Controllers after applying the auto rule. */
    std::uint32_t
    controllers() const
    {
        if (memControllers)
            return memControllers;
        return numCores >= 4 ? numCores / 4 : 1;
    }

    /** LLC configuration derived from this machine. */
    CacheConfig
    llcConfig() const
    {
        CacheConfig c;
        c.sizeBytes = llcBytes;
        c.ways = llcWays;
        c.blockBytes = blockBytes;
        c.numCores = numCores;
        c.repl = repl;
        c.intervalMisses = intervalMisses;
        c.shadowSampling = shadowSampling;
        c.seed = seed;
        return c;
    }

    /**
     * Check the configuration before any component is built.
     *
     * Returns one actionable message per problem found (empty means
     * valid). Callers that cannot proceed (Runner, prism_sim) report
     * the list instead of failing deep inside cache construction.
     */
    std::vector<std::string>
    validate() const
    {
        std::vector<std::string> errors;
        auto isPow2 = [](std::uint64_t v) {
            return v != 0 && (v & (v - 1)) == 0;
        };

        if (numCores == 0)
            errors.push_back("numCores must be at least 1");
        if (llcWays == 0)
            errors.push_back("llcWays must be at least 1");
        if (!isPow2(blockBytes))
            errors.push_back("blockBytes (" +
                             std::to_string(blockBytes) +
                             ") must be a power of two");
        if (llcWays != 0 && blockBytes != 0) {
            const std::uint64_t line =
                static_cast<std::uint64_t>(blockBytes) * llcWays;
            if (llcBytes == 0 || llcBytes % line != 0) {
                errors.push_back(
                    "llcBytes (" + std::to_string(llcBytes) +
                    ") must be a non-zero multiple of blockBytes * "
                    "llcWays (" +
                    std::to_string(line) + ")");
            } else if (!isPow2(llcBytes / line)) {
                errors.push_back(
                    "LLC set count (llcBytes / blockBytes / llcWays "
                    "= " +
                    std::to_string(llcBytes / line) +
                    ") must be a power of two");
            }
        }
        if (l1Ways == 0)
            errors.push_back("l1Ways must be at least 1");
        if (l1Ways != 0 && blockBytes != 0) {
            const std::uint64_t line =
                static_cast<std::uint64_t>(blockBytes) * l1Ways;
            if (l1Bytes == 0 || l1Bytes % line != 0)
                errors.push_back(
                    "l1Bytes (" + std::to_string(l1Bytes) +
                    ") must be a non-zero multiple of blockBytes * "
                    "l1Ways (" +
                    std::to_string(line) + ")");
            else if (!isPow2(l1Bytes / line))
                errors.push_back(
                    "L1 set count (l1Bytes / blockBytes / l1Ways = " +
                    std::to_string(l1Bytes / line) +
                    ") must be a power of two");
        }
        if (instrBudget == 0)
            errors.push_back("instrBudget must be at least 1");
        if (warmupInstr >= instrBudget)
            errors.push_back(
                "warmupInstr (" + std::to_string(warmupInstr) +
                ") must be smaller than instrBudget (" +
                std::to_string(instrBudget) + ")");
        return errors;
    }

    /**
     * Compact textual fingerprint covering every field that can
     * change a simulation outcome. Two configurations with equal
     * fingerprints produce bit-identical runs, so the fingerprint
     * keys the concurrent stand-alone-IPC memo shared across sweep
     * jobs (see Runner / SweepRunner).
     */
    std::string
    fingerprint() const
    {
        auto dbl = [](double v) {
            char buf[32];
            const auto res =
                std::to_chars(buf, buf + sizeof(buf), v);
            return std::string(buf, res.ptr);
        };
        std::string s;
        s += "c" + std::to_string(numCores);
        s += "/llc" + std::to_string(llcBytes);
        s += "x" + std::to_string(llcWays);
        s += "/b" + std::to_string(blockBytes);
        s += "/r" + std::to_string(static_cast<int>(repl));
        s += "/W" + std::to_string(intervalMisses);
        s += "/sh" + std::to_string(shadowSampling);
        s += "/l1-" + std::to_string(l1Bytes);
        s += "x" + std::to_string(l1Ways);
        s += "/t" + dbl(llcHitCycles);
        s += "," + dbl(dramCycles);
        s += "," + dbl(ctrlServiceCycles);
        s += "/mc" + std::to_string(memControllers);
        s += "/i" + std::to_string(instrBudget);
        s += "+" + std::to_string(warmupInstr);
        s += "/s" + std::to_string(seed);
        return s;
    }

    /**
     * The paper's machine for @p cores (Table 2 plus Section 4's
     * LLC-per-core-count rule).
     */
    static MachineConfig
    forCores(std::uint32_t cores)
    {
        MachineConfig m;
        m.numCores = cores;
        if (cores <= 8) {
            m.llcBytes = 4ull << 20;
            m.llcWays = 16;
        } else if (cores == 16) {
            m.llcBytes = 8ull << 20;
            m.llcWays = 32;
        } else {
            m.llcBytes = 16ull << 20;
            m.llcWays = 64;
        }
        // The paper recomputes every N misses over 200–500M
        // instructions; our scaled runs are ~100x shorter, so the
        // evaluation machine halves W to get enough recomputations
        // per run while keeping Equation 1's N/W correction gentle
        // (see EXPERIMENTS.md, "Scaling").
        m.intervalMisses = m.llcBytes / m.blockBytes / 2;
        return m;
    }
};

} // namespace prism

#endif // PRISM_SIM_MACHINE_CONFIG_HH
