#include "sim/system.hh"

#include <ostream>

#include "common/json.hh"
#include "common/prism_assert.hh"
#include "plane/way_mask_scheme.hh"
#include "prism/prism_scheme.hh"
#include "workload/trace_generator.hh"

namespace prism
{

namespace
{

/**
 * Timing profile used for "trace:<path>" workload entries: the trace
 * supplies the addresses, this supplies generic 4-wide-OoO timing.
 */
const BenchmarkProfile traceProfile{
    "trace", BenchCategory::Intensive, StackDistParams{}, 1.0, 0.15,
    2.0, 0.3};

} // namespace

System::System(const MachineConfig &config, const Workload &workload,
               PartitionScheme *scheme)
    : config_(config), workload_name_(workload.name),
      llc_(config.llcConfig()),
      mem_(config.controllers(), config.ctrlServiceCycles,
           config.dramCycles),
      scheme_(scheme)
{
    fatalIf(workload.benchmarks.size() != config_.numCores,
            "System: workload size != core count");

    llc_.setScheme(scheme_);
    llc_.setTimingHook(
        [this](IntervalSnapshot &snap) { fillTiming(snap); });

    const auto &lib = ProfileLibrary::instance();
    cores_.reserve(config_.numCores);
    for (CoreId c = 0; c < config_.numCores; ++c) {
        const std::string &bench = workload.benchmarks[c];
        const BenchmarkProfile *profile;
        std::unique_ptr<AccessGenerator> gen;
        if (bench.rfind("trace:", 0) == 0) {
            // Replay a block-address trace file on this core with
            // the generic timing profile.
            profile = &traceProfile;
            gen = std::make_unique<TraceFileGenerator>(
                bench.substr(6), c);
        } else {
            profile = &lib.get(bench);
            gen = ProfileLibrary::makeGenerator(
                *profile, c,
                config_.seed * 0x9E3779B97F4A7C15ULL + c * 7919 + 1);
        }
        Core core{
            profile,
            std::move(gen),
            L1Cache(config_.l1Bytes, config_.l1Ways,
                    config_.blockBytes),
            Rng(config_.seed * 31 + c * 17 + 5),
        };
        cores_.push_back(std::move(core));
    }
}

void
System::step(CoreId id)
{
    Core &c = cores_[id];

    // Instructions until (and including) the next memory access.
    c.instr_carry += 1.0 / c.profile->memRatio;
    std::uint64_t k = static_cast<std::uint64_t>(c.instr_carry);
    c.instr_carry -= static_cast<double>(k);
    if (k == 0)
        k = 1;
    c.instructions += k;
    c.cycle += static_cast<double>(k) * c.profile->cpiIdeal;

    const Addr addr = c.gen->next();
    const bool is_store = c.store_rng.chance(c.profile->storeFrac);
    if (c.l1.access(addr))
        return;

    // L1 miss: LLC lookup (part of CPI_ideal — it happens whether or
    // not the LLC hits, and does not depend on the partitioning).
    c.cycle += config_.llcHitCycles;
    const AccessResult res = llc_.access(id, addr, is_store);
    if (res.writeback)
        mem_.writeback(addr ^ 0x5A5A5A5Aull, c.cycle);
    if (res.hit) {
        ++c.llc_hits;
        return;
    }

    ++c.llc_misses;
    // The stall an OoO core observes is the memory latency divided by
    // the program's memory-level parallelism.
    const double lat =
        mem_.request(addr, c.cycle) / c.profile->mlp;
    c.cycle += lat;
    c.llc_stall += lat;
}

void
System::resetStats()
{
    for (Core &c : cores_) {
        c.instructions = 0;
        c.llc_stall = 0.0;
        c.llc_hits = 0;
        c.llc_misses = 0;
        c.prev_instr = 0;
        c.prev_cycle = c.cycle;
        c.prev_stall = 0.0;
        c.finished = false;
    }
}

void
System::setRecorder(telemetry::IntervalRecorder *recorder)
{
    recorder_ = recorder;
    if (!recorder_) {
        llc_.setIntervalObserver(nullptr);
        return;
    }
    llc_.setIntervalObserver(
        [this](const IntervalSnapshot &snap, std::uint64_t interval) {
            recordInterval(snap, interval);
        });
}

void
System::recordInterval(const IntervalSnapshot &snap,
                       std::uint64_t interval)
{
    // Surface checked-mode occupancy repairs as instant events; the
    // cache only counts them, so detect new ones by delta.
    const std::uint64_t repairs = llc_.ownershipRepairs();
    if (repairs > seen_ownership_repairs_) {
        recorder_->addEvent(telemetry::TelemetryEvent{
            telemetry::EventKind::OwnershipRepair, interval,
            invalidCore,
            static_cast<double>(repairs - seen_ownership_repairs_)});
        seen_ownership_repairs_ = repairs;
    }

    telemetry::IntervalSample s;
    s.interval = interval;
    s.missesInInterval = snap.intervalMisses;
    const std::uint32_t n = snap.numCores();
    s.occupancy.resize(n);
    s.missFrac.resize(n);
    s.ipc.resize(n);
    s.hits.resize(n);
    s.misses.resize(n);
    for (CoreId c = 0; c < n; ++c) {
        const CoreIntervalStats &cs = snap.cores[c];
        s.occupancy[c] = snap.occupancyFraction(c);
        s.missFrac[c] = snap.missFraction(c);
        s.ipc[c] = cs.cycles
                       ? static_cast<double>(cs.instructions) /
                             static_cast<double>(cs.cycles)
                       : 0.0;
        s.hits[c] = cs.sharedHits;
        s.misses[c] = cs.sharedMisses;
    }
    if (const auto *h = dynamic_cast<const ControllerHost *>(scheme_)) {
        s.target = h->controller().targets();
        s.evProb = h->controller().evictionProbs();
    }
    recorder_->record(std::move(s));
}

void
System::fillTiming(IntervalSnapshot &snap)
{
    for (CoreId i = 0; i < config_.numCores; ++i) {
        Core &c = cores_[i];
        auto &cs = snap.cores[i];
        cs.instructions = c.instructions - c.prev_instr;
        cs.cycles = static_cast<std::uint64_t>(c.cycle - c.prev_cycle);
        cs.llcStallCycles =
            static_cast<std::uint64_t>(c.llc_stall - c.prev_stall);
        c.prev_instr = c.instructions;
        c.prev_cycle = c.cycle;
        c.prev_stall = c.llc_stall;
    }
}

SystemResult
System::run()
{
    // --- warm-up: fill the cache and let policies converge ---
    // All cores keep running (in global time order, like the measured
    // phase) until the slowest one crosses the warm-up budget, so the
    // per-core clocks stay aligned at the measurement boundary.
    if (config_.warmupInstr > 0) {
        std::uint32_t warm = 0;
        std::vector<char> done(config_.numCores, 0);
        while (warm < config_.numCores) {
            CoreId next = 0;
            double best = -1.0;
            for (CoreId i = 0; i < config_.numCores; ++i) {
                if (best < 0.0 || cores_[i].cycle < best) {
                    best = cores_[i].cycle;
                    next = i;
                }
            }
            step(next);
            pollCancel();
            if (!done[next] &&
                cores_[next].instructions >= config_.warmupInstr) {
                done[next] = 1;
                ++warm;
            }
        }
    }

    // --- measured phase ---
    resetStats();
    std::vector<double> measure_start(config_.numCores);
    for (CoreId i = 0; i < config_.numCores; ++i)
        measure_start[i] = cores_[i].cycle;

    // Cores that exhaust their budget keep running (generating cache
    // pressure, as in the paper's methodology) until every core has
    // finished; their statistics are frozen at the crossing point.
    SystemResult result;
    result.cores.resize(config_.numCores);

    std::uint32_t finished = 0;
    while (finished < config_.numCores) {
        CoreId next = 0;
        double best = -1.0;
        for (CoreId i = 0; i < config_.numCores; ++i) {
            if (best < 0.0 || cores_[i].cycle < best) {
                best = cores_[i].cycle;
                next = i;
            }
        }
        step(next);
        pollCancel();
        Core &c = cores_[next];
        if (!c.finished && c.instructions >= config_.instrBudget) {
            c.finished = true;
            ++finished;
            auto &r = result.cores[next];
            r.instructions = c.instructions;
            r.cycles = c.cycle - measure_start[next];
            r.llcStallCycles = c.llc_stall;
            r.llcHits = c.llc_hits;
            r.llcMisses = c.llc_misses;
            r.occupancyAtFinish = llc_.occupancyFraction(next);
            if (recorder_)
                recorder_->addEvent(telemetry::TelemetryEvent{
                    telemetry::EventKind::CoreFinish,
                    llc_.intervals(), next, r.occupancyAtFinish});
        }
    }

    result.intervals = llc_.intervals();
    return result;
}

void
System::dumpStats(std::ostream &os) const
{
    os << "system.cores " << config_.numCores << "\n"
       << "system.llc.size_bytes " << config_.llcBytes << "\n"
       << "system.llc.ways " << config_.llcWays << "\n"
       << "system.llc.interval_w " << llc_.intervalLength() << "\n"
       << "system.llc.intervals " << llc_.intervals() << "\n"
       << "system.llc.total_misses " << llc_.totalMisses() << "\n"
       << "system.llc.writebacks " << llc_.writebacks() << "\n"
       << "system.mem.controllers " << config_.controllers() << "\n"
       << "system.mem.read_requests " << mem_.requests() << "\n"
       << "system.mem.writebacks " << mem_.writebacks() << "\n"
       << "system.mem.mean_queue_cycles " << mem_.meanQueueCycles()
       << "\n"
       << "system.llc.checked " << (llc_.checked() ? 1 : 0) << "\n"
       << "system.llc.invariant_violations "
       << llc_.invariantViolations() << "\n"
       << "system.llc.ownership_repairs " << llc_.ownershipRepairs()
       << "\n";
    if (const auto *h = dynamic_cast<const ControllerHost *>(scheme_)) {
        const PrismController &ctl = h->controller();
        os << "prism.recomputes " << ctl.recomputes() << "\n"
           << "prism.degraded_intervals " << ctl.degradedIntervals()
           << "\n"
           << "prism.invariant_violations "
           << ctl.invariantViolations() << "\n"
           << "prism.dropped_recomputes " << ctl.droppedRecomputes()
           << "\n"
           << "prism.clamped_eq1_inputs " << ctl.clampedInputs()
           << "\n"
           << "prism.eq1_fallbacks " << ctl.eq1Fallbacks() << "\n";
        if (const auto *wm =
                dynamic_cast<const WayMaskScheme *>(scheme_))
            os << "prism.way_quant_error "
               << wm->wayQuantError().mean() << "\n";
        if (ctl.faultInjector())
            os << "prism.faults_injected "
               << ctl.faultInjector()->injected() << "\n";
    }
    for (CoreId c = 0; c < config_.numCores; ++c) {
        const Core &core = cores_[c];
        const std::string p = "core" + std::to_string(c) + ".";
        os << p << "benchmark " << core.profile->name << "\n"
           << p << "instructions " << core.instructions << "\n"
           << p << "cycles " << static_cast<std::uint64_t>(core.cycle)
           << "\n"
           << p << "llc_hits " << core.llc_hits << "\n"
           << p << "llc_misses " << core.llc_misses << "\n"
           << p << "llc_stall_cycles "
           << static_cast<std::uint64_t>(core.llc_stall) << "\n"
           << p << "l1_hits " << core.l1.hits() << "\n"
           << p << "l1_misses " << core.l1.misses() << "\n"
           << p << "occupancy_blocks " << llc_.occupancy(c) << "\n";
    }
}

void
System::dumpStatsJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.kv("schema", "prism-stats-v1");
    w.kv("workload", workload_name_);
    w.kv("scheme",
         scheme_ ? scheme_->name() : std::string("Baseline"));

    w.key("system");
    w.beginObject();
    w.kv("cores", config_.numCores);
    w.key("llc");
    w.beginObject();
    w.kv("size_bytes", config_.llcBytes);
    w.kv("ways", config_.llcWays);
    w.kv("interval_w", llc_.intervalLength());
    w.kv("intervals", llc_.intervals());
    w.kv("total_misses", llc_.totalMisses());
    w.kv("writebacks", llc_.writebacks());
    w.kv("checked", llc_.checked());
    w.kv("invariant_violations", llc_.invariantViolations());
    w.kv("ownership_repairs", llc_.ownershipRepairs());
    w.endObject();
    w.key("mem");
    w.beginObject();
    w.kv("controllers", config_.controllers());
    w.kv("read_requests", mem_.requests());
    w.kv("writebacks", mem_.writebacks());
    w.kv("mean_queue_cycles", mem_.meanQueueCycles());
    w.endObject();
    w.endObject();

    if (const auto *h = dynamic_cast<const ControllerHost *>(scheme_)) {
        const PrismController &ctl = h->controller();
        w.key("prism");
        w.beginObject();
        w.kv("recomputes", ctl.recomputes());
        w.kv("degraded_intervals", ctl.degradedIntervals());
        w.kv("invariant_violations", ctl.invariantViolations());
        w.kv("dropped_recomputes", ctl.droppedRecomputes());
        w.kv("clamped_eq1_inputs", ctl.clampedInputs());
        w.kv("eq1_fallbacks", ctl.eq1Fallbacks());
        w.kv("fallback_entries", ctl.fallbackEntries());
        if (const auto *wm =
                dynamic_cast<const WayMaskScheme *>(scheme_))
            w.kv("way_quant_error", wm->wayQuantError().mean());
        if (ctl.faultInjector())
            w.kv("faults_injected", ctl.faultInjector()->injected());
        w.endObject();
    }

    // Ring totals let offline consumers (prism_doctor) tell a
    // truncated recording from a quiet one without the trace file.
    if (recorder_) {
        w.key("telemetry");
        w.beginObject();
        w.kv("capacity",
             static_cast<std::uint64_t>(recorder_->capacity()));
        w.kv("samples_recorded", recorder_->recorded());
        w.kv("dropped_samples", recorder_->droppedSamples());
        w.kv("events_seen", recorder_->eventsSeen());
        w.kv("dropped_events", recorder_->droppedEvents());
        w.endObject();
    }

    w.key("cores");
    w.beginArray();
    for (CoreId c = 0; c < config_.numCores; ++c) {
        const Core &core = cores_[c];
        w.beginObject();
        w.kv("benchmark", core.profile->name);
        w.kv("instructions", core.instructions);
        w.kv("cycles", static_cast<std::uint64_t>(core.cycle));
        w.kv("llc_hits", core.llc_hits);
        w.kv("llc_misses", core.llc_misses);
        w.kv("llc_stall_cycles",
             static_cast<std::uint64_t>(core.llc_stall));
        w.kv("l1_hits", core.l1.hits());
        w.kv("l1_misses", core.l1.misses());
        w.kv("occupancy_blocks", llc_.occupancy(c));
        w.endObject();
    }
    w.endArray();

    w.endObject();
}

} // namespace prism
