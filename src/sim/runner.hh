/**
 * @file
 * Experiment runner: named schemes, stand-alone IPC caching and
 * workload execution.
 *
 * Every figure harness funnels through this module: it instantiates
 * the requested management scheme, runs the workload on the machine,
 * runs (and memoises) the stand-alone reference simulations needed
 * for ANTT/fairness/QoS, and packages the per-core results together
 * with scheme-internal statistics (eviction-probability traces,
 * victimless-replacement fractions).
 */

#ifndef PRISM_SIM_RUNNER_HH
#define PRISM_SIM_RUNNER_HH

#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/cancel.hh"
#include "common/concurrent_memo.hh"
#include "sim/machine_config.hh"
#include "sim/system.hh"
#include "telemetry/interval_recorder.hh"
#include "workload/suites.hh"

namespace prism
{

/** Selector for the built-in management schemes. */
enum class SchemeKind
{
    Baseline,  ///< unmanaged cache under the configured replacement
    UCP,       ///< way-partitioning + lookahead [14]
    PIPP,      ///< promotion/insertion pseudo-partitioning [20]
    TADIP,     ///< thread-aware DIP [7]
    FairWP,    ///< fair way-partitioning [9]
    Vantage,   ///< Vantage on set-associative cache [17]
    PrismH,    ///< PriSM hit-maximisation
    PrismF,    ///< PriSM fairness
    PrismQ,    ///< PriSM QoS for core 0
    PrismLA,   ///< PriSM driven by extended-UCP lookahead (Fig. 7)
    PrismWM,   ///< PriSM targets enforced by CAT-style way masks
    WPHitMax,  ///< Algorithm 1 rounded to ways (Figure 5 comparator)
    StaticWP,  ///< fixed even way split (Figure 6's trivial scheme)
};

const char *schemeName(SchemeKind kind);

/**
 * Parse a scheme name as printed by schemeName() ("LRU" is accepted
 * as an alias for Baseline). @return true and set @p kind on success.
 */
bool schemeFromName(std::string_view name, SchemeKind &kind);

/** Parse a replacement-policy name as printed by replKindName(). */
bool replFromName(std::string_view name, ReplKind &kind);

/** Extra knobs some schemes take. */
struct SchemeOptions
{
    /** K-bit quantisation of PriSM probabilities (0 = float). */
    unsigned probBits = 0;

    /** PriSM-Q: IPC floor as a fraction of stand-alone IPC. */
    double qosTargetFrac = 0.8;

    /** Vantage/extended-UCP lookahead granularity. */
    std::uint32_t vantageUnitsPerWay = 4;

    /** If non-null, System::dumpStats() is written here post-run. */
    std::ostream *statsSink = nullptr;

    /** If non-null, System::dumpStatsJson() is written here post-run. */
    std::ostream *statsJsonSink = nullptr;

    /**
     * Telemetry: when enabled, the run records the per-interval time
     * series into a recorder returned on RunResult::recorder, and —
     * when telemetry.metrics is set — aggregates scoped-timer spans
     * there. Observation only: enabling it perturbs no simulation
     * state, so results are identical with or without it.
     */
    telemetry::TelemetryConfig telemetry;

    /**
     * Fault-injection spec ("" = none); grammar in docs/TESTING.md.
     * The injector is seeded from the machine seed, so a fixed
     * (seed, spec) pair reproduces identical fault sequences.
     */
    std::string faultSpec;

    /**
     * Checked mode: audit the eviction distribution and the cache's
     * ownership counters every interval, repairing / degrading
     * instead of propagating violations.
     */
    bool checked = false;

    /**
     * Cooperative cancellation (non-owning; null = never cancelled).
     * The simulation polls the token every few thousand scheduler
     * steps and unwinds with CancelledError — the job supervisor's
     * deadline watchdog and prism_bench's SIGINT handler both feed
     * this. Purely observational until it fires: results are
     * identical with or without a token attached.
     */
    const CancelToken *cancel = nullptr;
};

/** Full outcome of one workload run under one scheme. */
struct RunResult
{
    std::string workload;
    std::string scheme;

    std::vector<std::string> benchmarks;
    std::vector<double> ipc;           ///< shared-mode (MP) IPC
    std::vector<double> ipcStandalone; ///< stand-alone (SP) IPC
    std::vector<std::uint64_t> llcMisses;
    std::vector<std::uint64_t> llcHits;
    std::vector<double> occupancyAtFinish;

    std::uint64_t intervals = 0;

    // --- PriSM-internal statistics (zero for other schemes) ---
    double victimlessFraction = 0.0;
    std::vector<double> evProbMean;
    std::vector<double> evProbStddev;
    std::uint64_t recomputes = 0;

    /**
     * CachePlane backend id ("way-mask" for PriSM-WM); empty for the
     * schemes that predate the plane split, whose JSON stays
     * byte-identical.
     */
    std::string plane;
    /** PriSM-WM: mean way-quantisation error |alloc - T*ways|. */
    double wayQuantError = 0.0;

    // --- robustness statistics (checked mode / fault injection) ---
    std::uint64_t faultsInjected = 0;
    std::uint64_t degradedIntervals = 0;
    /** Distribution + ownership invariant violations detected. */
    std::uint64_t invariantViolations = 0;
    std::uint64_t ownershipRepairs = 0;
    std::uint64_t clampedEq1Inputs = 0;
    std::uint64_t droppedRecomputes = 0;
    /** Intervals served by the repl policy (E unrecoverable). */
    std::uint64_t fallbackEntries = 0;

    /**
     * The run's interval time series; null unless the run was made
     * with SchemeOptions::telemetry.enabled. Shared ownership so
     * results can be copied freely (the series itself is immutable
     * once the run finished).
     */
    std::shared_ptr<const telemetry::IntervalRecorder> recorder;

    double antt() const;
    double fairness() const;
    double ipcThroughput() const;
};

/**
 * Concurrent memo of stand-alone reference IPCs, keyed by (solo
 * machine fingerprint, benchmark). One instance can be shared by
 * many Runners — the sweep engine hands the same memo to every job
 * so each reference simulation executes exactly once per sweep
 * regardless of thread count.
 */
using StandaloneIpcMemo = ConcurrentMemo<double>;

/**
 * Runs workloads and memoises stand-alone reference IPCs.
 *
 * Thread-safety: run() and standaloneIpc() are safe to call from
 * multiple threads concurrently (on the same Runner or on distinct
 * Runners sharing a StandaloneIpcMemo), except that SchemeOptions
 * with a non-null statsSink must not be used concurrently.
 */
class Runner
{
  public:
    /**
     * @param config The evaluation machine.
     * @param memo   Stand-alone-IPC memo to share; a private memo is
     *               created when null.
     */
    explicit Runner(const MachineConfig &config,
                    std::shared_ptr<StandaloneIpcMemo> memo = nullptr)
        : config_(config),
          standalone_memo_(memo ? std::move(memo)
                                : std::make_shared<StandaloneIpcMemo>())
    {
        MachineConfig solo = config_;
        solo.numCores = 1;
        solo_fingerprint_ = solo.fingerprint();
    }

    const MachineConfig &config() const { return config_; }

    /** Run @p workload under @p kind. */
    RunResult run(const Workload &workload, SchemeKind kind,
                  const SchemeOptions &options = {});

    /**
     * Stand-alone IPC of @p benchmark on this machine (whole LLC,
     * unmanaged); memoised across calls and across every Runner
     * sharing this memo. A non-null @p cancel makes the reference
     * simulation cancellable; a cancelled computation is not
     * memoised, so a later retry computes it afresh.
     */
    double standaloneIpc(const std::string &benchmark,
                         const CancelToken *cancel = nullptr);

    /** The memo backing standaloneIpc(). */
    const std::shared_ptr<StandaloneIpcMemo> &
    standaloneMemo() const
    {
        return standalone_memo_;
    }

  private:
    std::unique_ptr<PartitionScheme>
    makeScheme(SchemeKind kind, const SchemeOptions &options,
               double qos_target_ipc) const;

    MachineConfig config_;
    std::string solo_fingerprint_;
    std::shared_ptr<StandaloneIpcMemo> standalone_memo_;
};

} // namespace prism

#endif // PRISM_SIM_RUNNER_HH
