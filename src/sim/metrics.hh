/**
 * @file
 * Multi-program performance metrics (Eyerman & Eeckhout [3]).
 *
 * ANTT (lower is better) averages each program's slowdown versus its
 * stand-alone run; fairness (higher is better, in [0,1]) is the ratio
 * of the smallest to largest normalised progress; IPC throughput is
 * the plain sum of IPCs (used by the Figure 1(b) study).
 */

#ifndef PRISM_SIM_METRICS_HH
#define PRISM_SIM_METRICS_HH

#include <span>

#include "common/prism_assert.hh"

namespace prism
{

/** Average Normalised Turnaround Time: mean of IPC_SP / IPC_MP. */
inline double
antt(std::span<const double> ipc_sp, std::span<const double> ipc_mp)
{
    panicIf(ipc_sp.size() != ipc_mp.size() || ipc_sp.empty(),
            "antt: bad inputs");
    double sum = 0.0;
    for (std::size_t i = 0; i < ipc_sp.size(); ++i) {
        panicIf(ipc_mp[i] <= 0.0, "antt: non-positive shared IPC");
        sum += ipc_sp[i] / ipc_mp[i];
    }
    return sum / static_cast<double>(ipc_sp.size());
}

/** Fairness: min over pairs of relative slowdowns == min/max. */
inline double
fairness(std::span<const double> ipc_sp, std::span<const double> ipc_mp)
{
    panicIf(ipc_sp.size() != ipc_mp.size() || ipc_sp.empty(),
            "fairness: bad inputs");
    double lo = 0.0, hi = 0.0;
    for (std::size_t i = 0; i < ipc_sp.size(); ++i) {
        panicIf(ipc_sp[i] <= 0.0, "fairness: non-positive alone IPC");
        const double progress = ipc_mp[i] / ipc_sp[i];
        if (i == 0 || progress < lo)
            lo = progress;
        if (i == 0 || progress > hi)
            hi = progress;
    }
    return hi > 0.0 ? lo / hi : 0.0;
}

/** IPC throughput: sum of shared-mode IPCs. */
inline double
ipcThroughput(std::span<const double> ipc_mp)
{
    double sum = 0.0;
    for (double v : ipc_mp)
        sum += v;
    return sum;
}

} // namespace prism

#endif // PRISM_SIM_METRICS_HH
