/**
 * @file
 * Access-generator interface and simple concrete generators.
 *
 * A generator models the sequence of block addresses a program's
 * memory instructions touch. The multicore simulator feeds these
 * through a private L1 and then into the shared LLC, so the
 * generator's locality directly determines the program's miss-ratio
 * curve — which is the property the cache-partitioning schemes under
 * study react to.
 */

#ifndef PRISM_WORKLOAD_GENERATOR_HH
#define PRISM_WORKLOAD_GENERATOR_HH

#include <cstdint>
#include <memory>

#include "common/rng.hh"
#include "common/types.hh"

namespace prism
{

/** Abstract source of block-granular addresses. */
class AccessGenerator
{
  public:
    virtual ~AccessGenerator() = default;

    /** Produce the next block address of the stream. */
    virtual Addr next() = 0;
};

/**
 * Mix a stream id into a block number to form a globally unique,
 * set-index-scrambled address. Stream ids keep per-core address
 * spaces disjoint (multi-programmed workloads share nothing).
 */
inline Addr
makeBlockAddr(std::uint32_t stream_id, std::uint64_t block)
{
    // splitmix64-style finaliser scrambles the block number so that
    // consecutive blocks land in unrelated cache sets.
    std::uint64_t z = block + 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    return (static_cast<Addr>(stream_id) << 40) | (z & 0xFFFFFFFFFFULL);
}

/**
 * Pure streaming access pattern: every access touches the next block
 * of a very long array, wrapping after @p length blocks. Under LRU
 * this yields (near) zero reuse at any realistic cache size — the
 * archetype of benchmarks like 470.lbm or 410.bwaves.
 */
class StreamGenerator : public AccessGenerator
{
  public:
    StreamGenerator(std::uint32_t stream_id, std::uint64_t length)
        : stream_id_(stream_id), length_(length)
    {
        fatalIf(length_ == 0, "StreamGenerator: zero length");
    }

    Addr
    next() override
    {
        const Addr a = makeBlockAddr(stream_id_, pos_);
        pos_ = (pos_ + 1) % length_;
        return a;
    }

  private:
    std::uint32_t stream_id_;
    std::uint64_t length_;
    std::uint64_t pos_ = 0;
};

/**
 * Uniform random accesses over a fixed working set of @p blocks
 * blocks: a flat miss-ratio curve that falls off only once the cache
 * holds the entire working set.
 */
class UniformGenerator : public AccessGenerator
{
  public:
    UniformGenerator(std::uint32_t stream_id, std::uint64_t blocks,
                     std::uint64_t seed)
        : stream_id_(stream_id), blocks_(blocks), rng_(seed)
    {
        fatalIf(blocks_ == 0, "UniformGenerator: zero blocks");
    }

    Addr
    next() override
    {
        return makeBlockAddr(stream_id_, rng_.below(blocks_));
    }

  private:
    std::uint32_t stream_id_;
    std::uint64_t blocks_;
    Rng rng_;
};

} // namespace prism

#endif // PRISM_WORKLOAD_GENERATOR_HH
