#include "workload/trace_generator.hh"

#include <fstream>
#include <sstream>

#include "common/prism_assert.hh"

namespace prism
{

TraceFileGenerator::TraceFileGenerator(const std::string &path,
                                       std::uint32_t stream_id)
    : stream_id_(stream_id)
{
    std::ifstream in(path);
    fatalIf(!in, "TraceFileGenerator: cannot open '" + path + "'");

    std::string line;
    while (std::getline(in, line)) {
        // Strip comments and whitespace-only lines.
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ls(line);
        std::string token;
        if (!(ls >> token))
            continue;
        try {
            blocks_.push_back(std::stoull(token, nullptr, 0));
        } catch (const std::exception &) {
            fatal("TraceFileGenerator: bad address '" + token +
                  "' in " + path);
        }
    }
    fatalIf(blocks_.empty(),
            "TraceFileGenerator: no addresses in '" + path + "'");
}

TraceFileGenerator::TraceFileGenerator(std::vector<Addr> blocks,
                                       std::uint32_t stream_id)
    : blocks_(std::move(blocks)), stream_id_(stream_id)
{
    fatalIf(blocks_.empty(), "TraceFileGenerator: empty trace");
}

Addr
TraceFileGenerator::next()
{
    const Addr block = blocks_[pos_];
    if (++pos_ == blocks_.size()) {
        pos_ = 0;
        ++loops_;
    }
    // Tag with the stream id; keep the low 40 bits of the address so
    // set mapping follows the trace.
    return (static_cast<Addr>(stream_id_) << 40) |
           (block & 0xFFFFFFFFFFULL);
}

} // namespace prism
