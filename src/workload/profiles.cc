#include "workload/profiles.hh"

#include "common/prism_assert.hh"

namespace prism
{

const ProfileLibrary &
ProfileLibrary::instance()
{
    static const ProfileLibrary lib;
    return lib;
}

ProfileLibrary::ProfileLibrary()
{
    // Working-set sizes are in 64B blocks: 65536 blocks == 4MB.
    // theta < 1 concentrates reuse at short stack distances (steep
    // utility curve); coldFrac is the compulsory-miss/streaming rate.
    auto sd = [](std::uint64_t ws, double theta, double cold,
                 double loop_frac = 0.0, std::uint64_t loop_blocks = 0,
                 std::uint64_t loop_stride = 1) {
        return StackDistParams{ws,        theta,       cold,
                               loop_frac, loop_blocks, loop_stride};
    };

    // Cache-friendly, memory-intensive benchmarks: these are the
    // programs the paper repeatedly calls out as gaining space under
    // PriSM-H (179.art, 471.omnetpp) — large working sets with
    // concentrated reuse.
    // Total footprint (stack + loop) sits at 25–90% of the 4MB LLC,
    // giving each program a capacity knee an allocation policy can
    // exploit — under an unmanaged LRU cache the cyclic loops thrash
    // whenever streaming/intensive co-runners squeeze the program
    // below its knee.
    // 179.art is the canonical cliff program: a large cyclic loop
    // that fits only when the program owns most of a 4MB cache. The
    // other friendly programs have smooth concentrated-reuse curves
    // (diminishing returns), which is the dominant shape in SPEC.
    // Loop sizes and rates are chosen so one full sweep pass takes
    // ~250-300k instructions: runs of a few million instructions then
    // cover many reuse generations, which is what the paper's 500M
    // instruction windows provide (see EXPERIMENTS.md, "Scaling").
    add({"179.art", BenchCategory::Friendly,
         sd(12288, 0.45, 0.005, 0.50, 12288, 1), 0.70, 0.20, 2.5});
    add({"471.omnetpp", BenchCategory::Friendly,
         sd(16384, 0.50, 0.010, 0.40, 8192, 1), 0.80, 0.14, 1.8});
    add({"300.twolf", BenchCategory::Friendly,
         sd(20480, 0.50, 0.005), 0.80, 0.12, 1.5});
    add({"175.vpr", BenchCategory::Friendly,
         sd(20480, 0.60, 0.010), 0.90, 0.10, 1.5});
    add({"183.equake", BenchCategory::Friendly,
         sd(12288, 0.60, 0.030, 0.40, 8192, 1), 0.80, 0.13, 2.0});
    add({"401.bzip2", BenchCategory::Friendly,
         sd(14336, 0.65, 0.020), 0.90, 0.09, 1.5});

    // Moderately intensive with flatter curves.
    add({"168.wupwise", BenchCategory::Intensive,
         sd(28672, 0.70, 0.020), 0.70, 0.12, 3.0});
    add({"188.ammp", BenchCategory::Intensive,
         sd(16384, 0.65, 0.040, 0.35, 6144, 1), 0.85, 0.12, 2.0});

    // Working set far beyond any studied LLC: keeps missing whatever
    // it is given, generating heavy traffic.
    add({"429.mcf", BenchCategory::Intensive,
         sd(131072, 0.80, 0.050, 0.20, 32768, 1), 0.90, 0.16, 1.3});

    // Streaming: dominated by compulsory misses. The little reuse
    // these programs have lives in an L1-sized resident set, so no
    // LLC allocation buys them hits — caching their lines is a waste
    // of space, which is what hit-maximisation policies exploit.
    add({"470.lbm", BenchCategory::Streaming, sd(1024, 1.00, 0.85),
         0.60, 0.09, 8.0});
    add({"410.bwaves", BenchCategory::Streaming, sd(1024, 0.90, 0.70),
         0.60, 0.08, 8.0});
    add({"462.libquantum", BenchCategory::Streaming,
         sd(512, 1.00, 0.95), 0.50, 0.08, 10.0});
    add({"433.milc", BenchCategory::Streaming, sd(1024, 0.90, 0.60),
         0.70, 0.09, 6.0});

    // Cache-insensitive: small working sets with concentrated reuse,
    // mostly absorbed by the L1 no matter how the LLC is divided.
    add({"403.gcc", BenchCategory::Insensitive, sd(4096, 0.55, 0.010),
         1.00, 0.08, 2.0});
    add({"186.crafty", BenchCategory::Insensitive,
         sd(1536, 0.50, 0.002), 1.10, 0.06, 1.5});
    add({"197.parser", BenchCategory::Insensitive,
         sd(8192, 0.60, 0.010), 1.00, 0.08, 1.5});
}

void
ProfileLibrary::add(BenchmarkProfile profile)
{
    profiles_.push_back(std::move(profile));
}

const BenchmarkProfile &
ProfileLibrary::get(const std::string &name) const
{
    for (const auto &p : profiles_)
        if (p.name == name)
            return p;
    fatal("ProfileLibrary: unknown benchmark '" + name + "'");
}

std::vector<std::string>
ProfileLibrary::names() const
{
    std::vector<std::string> out;
    out.reserve(profiles_.size());
    for (const auto &p : profiles_)
        out.push_back(p.name);
    return out;
}

std::vector<std::string>
ProfileLibrary::namesIn(BenchCategory category) const
{
    std::vector<std::string> out;
    for (const auto &p : profiles_)
        if (p.category == category)
            out.push_back(p.name);
    return out;
}

std::unique_ptr<AccessGenerator>
ProfileLibrary::makeGenerator(const BenchmarkProfile &profile,
                              std::uint32_t stream_id, std::uint64_t seed)
{
    return std::make_unique<StackDistGenerator>(stream_id,
                                                profile.locality, seed);
}

} // namespace prism
