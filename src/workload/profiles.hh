/**
 * @file
 * SPEC-like synthetic benchmark profiles.
 *
 * The paper evaluates on SPEC CPU2000/2006 multi-programmed mixes.
 * Those traces are not distributable, so each benchmark named in the
 * paper is modelled as a StackDistGenerator parameterisation whose
 * miss-ratio-curve *shape* and memory intensity match the benchmark's
 * published characterisation (cache-friendly / streaming /
 * memory-intensive / cache-insensitive). The partitioning schemes
 * under study differentiate exactly on those properties. See
 * DESIGN.md, "Substitutions".
 */

#ifndef PRISM_WORKLOAD_PROFILES_HH
#define PRISM_WORKLOAD_PROFILES_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workload/generator.hh"
#include "workload/stack_dist_generator.hh"

namespace prism
{

/** Coarse classification used when composing workload mixes. */
enum class BenchCategory
{
    Friendly,    ///< steep utility curve; gains a lot from cache space
    Streaming,   ///< near-zero reuse; pollutes an unmanaged cache
    Intensive,   ///< high miss traffic, working set larger than LLC
    Insensitive, ///< working set fits easily; little LLC sensitivity
};

/** Full description of one synthetic benchmark. */
struct BenchmarkProfile
{
    std::string name;      ///< SPEC-style name, e.g. "179.art"
    BenchCategory category;

    // --- locality (drives the miss-ratio curve) ---
    StackDistParams locality;

    // --- timing ---
    /** CPI when every memory access hits in the LLC or closer. */
    double cpiIdeal;

    /**
     * Block-granular L1 accesses per instruction. This folds true
     * load/store density together with spatial locality (multiple
     * word accesses to one resident block count once), so streaming
     * programs have modest values despite high load rates.
     */
    double memRatio;

    /**
     * Memory-level parallelism: concurrent outstanding misses an OoO
     * core sustains for this program. LLC miss stalls are divided by
     * this factor; pointer-chasing codes sit near 1, streaming codes
     * overlap many misses.
     */
    double mlp;

    /**
     * Fraction of memory accesses that are stores. Stores dirty
     * blocks; dirty evictions generate DRAM write-back traffic that
     * occupies controller bandwidth.
     */
    double storeFrac = 0.3;
};

/** Registry of all built-in benchmark profiles. */
class ProfileLibrary
{
  public:
    /** The singleton library with the built-in profiles. */
    static const ProfileLibrary &instance();

    /** Look up a profile by name; fatal() if unknown. */
    const BenchmarkProfile &get(const std::string &name) const;

    /** All profile names, in registration order. */
    std::vector<std::string> names() const;

    /** Names of all profiles in @p category. */
    std::vector<std::string> namesIn(BenchCategory category) const;

    /**
     * Instantiate the access generator for @p profile.
     *
     * @param stream_id Address-space tag (core index in the mix).
     * @param seed Per-instance RNG seed.
     */
    static std::unique_ptr<AccessGenerator>
    makeGenerator(const BenchmarkProfile &profile, std::uint32_t stream_id,
                  std::uint64_t seed);

  private:
    ProfileLibrary();

    void add(BenchmarkProfile profile);

    std::vector<BenchmarkProfile> profiles_;
};

} // namespace prism

#endif // PRISM_WORKLOAD_PROFILES_HH
