#include "workload/order_stat_list.hh"

namespace prism
{

OrderStatList::OrderStatList(std::uint64_t seed)
    : prio_rng_(seed)
{
    // Node 0 is the nil sentinel with count 0 so countOf(nil) == 0.
    nodes_.push_back(Node{0, 0, nil, nil, 0});
}

OrderStatList::NodeIdx
OrderStatList::allocNode(Addr value)
{
    NodeIdx n;
    if (!free_.empty()) {
        n = free_.back();
        free_.pop_back();
    } else {
        nodes_.push_back(Node{});
        n = static_cast<NodeIdx>(nodes_.size() - 1);
    }
    nodes_[n] = Node{value, prio_rng_.next(), nil, nil, 1};
    return n;
}

void
OrderStatList::freeNode(NodeIdx n)
{
    free_.push_back(n);
}

void
OrderStatList::pull(NodeIdx n)
{
    nodes_[n].count =
        1 + countOf(nodes_[n].left) + countOf(nodes_[n].right);
}

void
OrderStatList::split(NodeIdx t, std::uint32_t k, NodeIdx &lo, NodeIdx &hi)
{
    if (t == nil) {
        lo = hi = nil;
        return;
    }
    const std::uint32_t left_count = countOf(nodes_[t].left);
    if (k <= left_count) {
        split(nodes_[t].left, k, lo, nodes_[t].left);
        hi = t;
    } else {
        split(nodes_[t].right, k - left_count - 1, nodes_[t].right, hi);
        lo = t;
    }
    pull(t);
}

OrderStatList::NodeIdx
OrderStatList::merge(NodeIdx a, NodeIdx b)
{
    if (a == nil)
        return b;
    if (b == nil)
        return a;
    if (nodes_[a].prio > nodes_[b].prio) {
        nodes_[a].right = merge(nodes_[a].right, b);
        pull(a);
        return a;
    }
    nodes_[b].left = merge(a, nodes_[b].left);
    pull(b);
    return b;
}

void
OrderStatList::pushFront(Addr value)
{
    root_ = merge(allocNode(value), root_);
}

Addr
OrderStatList::selectToFront(std::size_t rank)
{
    panicIf(rank >= size(), "OrderStatList::selectToFront: rank oob");
    NodeIdx lo, mid, hi;
    split(root_, static_cast<std::uint32_t>(rank), lo, hi);
    split(hi, 1, mid, hi);
    const Addr value = nodes_[mid].value;
    // mid is a single node; re-link it as the new front.
    root_ = merge(mid, merge(lo, hi));
    return value;
}

Addr
OrderStatList::peek(std::size_t rank) const
{
    panicIf(rank >= size(), "OrderStatList::peek: rank oob");
    NodeIdx t = root_;
    std::uint32_t k = static_cast<std::uint32_t>(rank);
    while (true) {
        const std::uint32_t left_count = countOf(nodes_[t].left);
        if (k < left_count) {
            t = nodes_[t].left;
        } else if (k == left_count) {
            return nodes_[t].value;
        } else {
            k -= left_count + 1;
            t = nodes_[t].right;
        }
    }
}

Addr
OrderStatList::popBack()
{
    panicIf(empty(), "OrderStatList::popBack: empty");
    NodeIdx lo, last;
    split(root_, static_cast<std::uint32_t>(size()) - 1, lo, last);
    const Addr value = nodes_[last].value;
    freeNode(last);
    root_ = lo;
    return value;
}

void
OrderStatList::clear()
{
    nodes_.resize(1);
    free_.clear();
    root_ = nil;
}

} // namespace prism
