#include "workload/stack_dist_generator.hh"

#include "common/prism_assert.hh"

namespace prism
{

StackDistGenerator::StackDistGenerator(std::uint32_t stream_id,
                                       const StackDistParams &params,
                                       std::uint64_t seed)
    : stream_id_(stream_id), params_(params), rng_(seed),
      stack_(seed ^ 0xC0FFEEULL),
      dist_cdf_(params.theta > 0.0 ? params.theta : 1.0)
{
    fatalIf(params_.workingSetBlocks == 0,
            "StackDistGenerator: empty working set");
    fatalIf(params_.theta <= 0.0, "StackDistGenerator: theta <= 0");
    fatalIf(params_.coldFrac < 0.0 || params_.coldFrac > 1.0,
            "StackDistGenerator: coldFrac out of [0,1]");

    if (params_.exactLru) {
        // Pre-populate the whole working set: a real program's
        // resident set exists from the start, and an empty stack
        // would make every early access artificially hot.
        for (std::uint64_t i = 0; i < params_.workingSetBlocks; ++i)
            stack_.pushFront(makeBlockAddr(stream_id_, next_block_++));
    }
}

Addr
StackDistGenerator::touchNewBlock()
{
    if (!params_.exactLru) {
        // IRM mode: cold accesses touch a fresh one-shot block in a
        // disjoint range; the resident working set itself is fixed.
        return makeBlockAddr(stream_id_,
                             (1ull << 38) | cold_block_++);
    }
    const Addr a = makeBlockAddr(stream_id_, next_block_++);
    stack_.pushFront(a);
    // Bound the stack depth: the oldest block is retired for good,
    // keeping selectToFront costs at O(log workingSet).
    if (stack_.size() > params_.workingSetBlocks)
        stack_.popBack();
    return a;
}

Addr
StackDistGenerator::next()
{
    if (params_.loopFrac > 0.0 && rng_.chance(params_.loopFrac)) {
        // Loop region: half the accesses sweep cyclically (the
        // capacity knee — hits only when the whole region is
        // resident), half re-reference a random loop element (real
        // array codes mix sweeps with irregular row reuse; a pure
        // cyclic sweep would be maximally adversarial to every
        // replacement policy at once).
        std::uint64_t pos;
        if (rng_.chance(0.5)) {
            pos = loop_pos_;
            loop_pos_ = (loop_pos_ + 1) % params_.loopBlocks;
        } else {
            pos = rng_.below(params_.loopBlocks);
        }
        return (static_cast<Addr>(stream_id_) << 40) | (1ull << 39) |
               (pos * params_.loopStride + stream_id_ * 1009ull);
    }

    if (rng_.chance(params_.coldFrac))
        return touchNewBlock();

    const double u = rng_.uniform();
    if (!params_.exactLru) {
        // IRM fast path: draw a popularity rank straight from the
        // inverse CDF; block rank r is touched with the same
        // probability mass as stack distance r in the exact model.
        const double scaled =
            dist_cdf_.fraction(u) *
            static_cast<double>(params_.workingSetBlocks);
        std::uint64_t r = static_cast<std::uint64_t>(scaled);
        if (r >= params_.workingSetBlocks)
            r = params_.workingSetBlocks - 1;
        return makeBlockAddr(stream_id_, r);
    }

    const double scaled =
        dist_cdf_.fraction(u) * static_cast<double>(stack_.size());
    std::size_t d = static_cast<std::size_t>(scaled);
    if (d >= stack_.size())
        d = stack_.size() - 1;
    return stack_.selectToFront(d);
}

} // namespace prism
