/**
 * @file
 * Order-statistic move-to-front list.
 *
 * The synthetic workload generator models a program's temporal
 * locality by drawing LRU *stack distances*: an access at distance d
 * touches the d-th most recently used block. Supporting that
 * efficiently needs a sequence with two operations, both O(log n):
 *
 *   - selectToFront(d): remove the element at rank d and re-insert it
 *     at the front, returning its value;
 *   - pushFront(v): insert a brand-new element at rank 0.
 *
 * This is implemented as an implicit treap (randomised balanced BST
 * keyed by subtree size) over a contiguous node pool.
 */

#ifndef PRISM_WORKLOAD_ORDER_STAT_LIST_HH
#define PRISM_WORKLOAD_ORDER_STAT_LIST_HH

#include <cstdint>
#include <vector>

#include "common/prism_assert.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace prism
{

/** Implicit treap acting as an O(log n) move-to-front list of Addr. */
class OrderStatList
{
  public:
    /** @param seed Seed for the treap priorities (structure only). */
    explicit OrderStatList(std::uint64_t seed = 1);

    /** Number of elements currently in the list. */
    std::size_t size() const { return nodes_.size() - free_.size() - 1; }

    bool empty() const { return size() == 0; }

    /** Insert @p value at the front (rank 0). */
    void pushFront(Addr value);

    /**
     * Remove the element at @p rank and re-insert it at the front.
     *
     * @param rank Zero-based rank; must be < size().
     * @return The value of the moved element.
     */
    Addr selectToFront(std::size_t rank);

    /** Read the element at @p rank without modifying the list. */
    Addr peek(std::size_t rank) const;

    /** Remove the element at the back (largest rank); list not empty. */
    Addr popBack();

    /** Remove all elements. */
    void clear();

  private:
    using NodeIdx = std::uint32_t;
    static constexpr NodeIdx nil = 0;

    struct Node
    {
        Addr value;
        std::uint64_t prio;
        NodeIdx left;
        NodeIdx right;
        std::uint32_t count; // subtree size, including self
    };

    NodeIdx allocNode(Addr value);
    void freeNode(NodeIdx n);

    std::uint32_t countOf(NodeIdx n) const { return nodes_[n].count; }
    void pull(NodeIdx n);

    /** Split t into [0, k) -> lo and [k, …) -> hi. */
    void split(NodeIdx t, std::uint32_t k, NodeIdx &lo, NodeIdx &hi);
    NodeIdx merge(NodeIdx a, NodeIdx b);

    std::vector<Node> nodes_; // element 0 is the nil sentinel
    std::vector<NodeIdx> free_;
    NodeIdx root_ = nil;
    Rng prio_rng_;
};

} // namespace prism

#endif // PRISM_WORKLOAD_ORDER_STAT_LIST_HH
