#include "workload/suites.hh"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "common/prism_assert.hh"
#include "common/rng.hh"
#include "workload/profiles.hh"

namespace prism
{
namespace suites
{

namespace
{

/**
 * Draw one mix of @p cores benchmarks. Quotas guarantee contention:
 * at least a quarter of the slots are cache-friendly and at least one
 * slot is streaming, with the remainder drawn from all categories.
 */
Workload
randomMix(const std::string &name, unsigned cores, Rng &rng)
{
    const auto &lib = ProfileLibrary::instance();
    const auto friendly = lib.namesIn(BenchCategory::Friendly);
    const auto streaming = lib.namesIn(BenchCategory::Streaming);
    const auto all = lib.names();

    Workload w;
    w.name = name;
    const unsigned n_friendly = std::max(1u, cores / 4);
    for (unsigned i = 0; i < n_friendly; ++i)
        w.benchmarks.push_back(friendly[rng.below(friendly.size())]);
    w.benchmarks.push_back(streaming[rng.below(streaming.size())]);
    while (w.benchmarks.size() < cores)
        w.benchmarks.push_back(all[rng.below(all.size())]);

    // Shuffle so the pinned categories are not always on low cores.
    for (std::size_t i = w.benchmarks.size(); i > 1; --i)
        std::swap(w.benchmarks[i - 1], w.benchmarks[rng.below(i)]);
    return w;
}

std::vector<Workload>
buildSuite(const char *prefix, unsigned count, unsigned cores,
           std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Workload> out;
    out.reserve(count);
    for (unsigned i = 1; i <= count; ++i)
        out.push_back(randomMix(prefix + std::to_string(i), cores, rng));
    return out;
}

} // namespace

std::vector<Workload>
quadCore()
{
    // Mixes the paper's Section 5 text describes are pinned; the rest
    // are deterministic seeded draws.
    std::vector<Workload> out = buildSuite("Q", 21, 4, 0x51AD0001ULL);

    auto pin = [&](unsigned idx, std::vector<std::string> benchmarks) {
        out[idx - 1].benchmarks = std::move(benchmarks);
    };
    // Q1: PriSM gives space to memory-intensive 168.wupwise.
    pin(1, {"168.wupwise", "403.gcc", "300.twolf", "186.crafty"});
    // Q3/Q9: UCP gets marginally more space to art/omnetpp.
    pin(3, {"179.art", "433.milc", "403.gcc", "197.parser"});
    pin(9, {"471.omnetpp", "410.bwaves", "401.bzip2", "186.crafty"});
    // Q4: vpr+omnetpp gain at the expense of bwaves+lbm.
    pin(4, {"175.vpr", "471.omnetpp", "410.bwaves", "470.lbm"});
    // Q5, Q6, Q8, Q14: cache-friendly art/twolf/omnetpp present
    // (where PIPP does well at quad core).
    pin(5, {"179.art", "300.twolf", "470.lbm", "462.libquantum"});
    pin(6, {"179.art", "471.omnetpp", "410.bwaves", "403.gcc"});
    pin(8, {"300.twolf", "471.omnetpp", "433.milc", "197.parser"});
    pin(14, {"179.art", "300.twolf", "401.bzip2", "410.bwaves"});
    // Q7: the paper's best case (~50% over LRU).
    pin(7, {"179.art", "462.libquantum", "470.lbm", "186.crafty"});
    // Q11/Q12: more space to art/omnetpp helps PriSM.
    pin(11, {"179.art", "429.mcf", "470.lbm", "197.parser"});
    pin(12, {"471.omnetpp", "429.mcf", "462.libquantum", "403.gcc"});
    // Q19/Q20: twolf-centred, low contention otherwise (the mixes
    // where Vantage edges out PriSM in Figure 7).
    pin(19, {"300.twolf", "186.crafty", "403.gcc", "197.parser"});
    pin(20, {"300.twolf", "197.parser", "403.gcc", "168.wupwise"});
    return out;
}

std::vector<Workload>
eightCore()
{
    return buildSuite("E", 16, 8, 0x51AD0008ULL);
}

std::vector<Workload>
sixteenCore()
{
    return buildSuite("S", 20, 16, 0x51AD0016ULL);
}

std::vector<Workload>
thirtyTwoCore()
{
    return buildSuite("T", 14, 32, 0x51AD0032ULL);
}

std::vector<Workload>
forCoreCount(unsigned cores)
{
    switch (cores) {
      case 4:
        return quadCore();
      case 8:
        return eightCore();
      case 16:
        return sixteenCore();
      case 32:
        return thirtyTwoCore();
      default:
        fatal("suites::forCoreCount: unsupported core count");
    }
}

bool
find(const std::string &name, Workload &out)
{
    for (const unsigned cores : {4u, 8u, 16u, 32u}) {
        for (const Workload &w : forCoreCount(cores)) {
            if (w.name == name) {
                out = w;
                return true;
            }
        }
    }
    return false;
}

} // namespace suites
} // namespace prism
