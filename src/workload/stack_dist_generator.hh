/**
 * @file
 * Stack-distance-driven access generator.
 *
 * The generator keeps its own LRU stack of previously touched blocks
 * (an OrderStatList) and, for each access, either touches a brand-new
 * block (a compulsory miss, probability @c coldFrac) or draws a stack
 * distance d from a power-law CDF and re-touches the d-th most
 * recently used block.
 *
 * Because the miss ratio of an LRU cache of capacity C equals the
 * probability of drawing a distance greater than C, the parameters
 * (workingSetBlocks, theta, coldFrac) give direct control over the
 * program's miss-ratio curve:
 *
 *   P(distance <= d) = (1 - coldFrac) * (d / workingSet)^theta
 *
 * Small theta concentrates reuse at short distances (cache friendly);
 * theta near 1 spreads it uniformly (cache insensitive until the
 * whole working set fits); a large coldFrac makes the program
 * streaming. This is the repo's substitute for SPEC traces — see
 * DESIGN.md, "Substitutions".
 */

#ifndef PRISM_WORKLOAD_STACK_DIST_GENERATOR_HH
#define PRISM_WORKLOAD_STACK_DIST_GENERATOR_HH

#include <cstdint>

#include "common/zipf.hh"
#include "workload/generator.hh"
#include "workload/order_stat_list.hh"

namespace prism
{

/** Parameters defining a stack-distance stream's locality. */
struct StackDistParams
{
    /** Maximum LRU-stack depth, in blocks (the working-set size). */
    std::uint64_t workingSetBlocks = 1 << 14;

    /** Power-law exponent of the stack-distance CDF, in (0, inf). */
    double theta = 0.7;

    /** Probability that an access touches a never-seen block. */
    double coldFrac = 0.02;

    /**
     * Probability that an access comes from a cyclic loop over
     * @c loopBlocks dedicated blocks. A cyclic reuse pattern is the
     * classic anti-LRU workload: it hits only when the *whole* loop
     * fits in the space the program effectively holds, giving the
     * program a capacity knee (an MRC cliff) — the structure real
     * SPEC codes like 179.art exhibit and utility-based allocation
     * policies exploit.
     */
    double loopFrac = 0.0;

    /** Size of the cyclic loop, in blocks. */
    std::uint64_t loopBlocks = 0;

    /**
     * Block stride of the loop. Loop addresses are *sequential*
     * (not hashed): real array sweeps map to consecutive cache sets,
     * and power-of-two strides concentrate the loop in 1/stride of
     * the sets. Set-skewed footprints are where per-set-uniform way
     * quotas waste space and PriSM's per-set flexibility pays off
     * (paper §2).
     */
    std::uint64_t loopStride = 1;

    /**
     * Reuse model for the stack component. The default samples block
     * *ranks* directly from the power-law CDF (independent reference
     * model): O(1) per access, with an LRU miss-ratio curve of the
     * same (d/W)^theta shape. Setting exactLru maintains a true LRU
     * stack (order-statistic treap) and draws exact stack distances —
     * O(log W) per access; used by the generator-fidelity tests and
     * available for studies where exact reuse ordering matters.
     */
    bool exactLru = false;
};

/** Generator realising the distribution described in the file docs. */
class StackDistGenerator : public AccessGenerator
{
  public:
    /**
     * @param stream_id Disjoint address-space tag (usually core id).
     * @param params Locality parameters.
     * @param seed Seed for all stochastic choices of this stream.
     */
    StackDistGenerator(std::uint32_t stream_id,
                       const StackDistParams &params, std::uint64_t seed);

    Addr next() override;

    /** Current LRU-stack depth (== workingSetBlocks after init). */
    std::uint64_t stackDepth() const { return stack_.size(); }

  private:
    Addr touchNewBlock();

    std::uint32_t stream_id_;
    StackDistParams params_;
    Rng rng_;
    OrderStatList stack_;
    std::uint64_t next_block_ = 0;
    std::uint64_t cold_block_ = 0;
    std::uint64_t loop_pos_ = 0;
    /** Inverse CDF of u^(1/theta): the shared skewed-stream law
     *  (common/zipf.hh), byte-identical to the old private table. */
    PowerLawTable dist_cdf_;
};

} // namespace prism

#endif // PRISM_WORKLOAD_STACK_DIST_GENERATOR_HH
