/**
 * @file
 * Multi-programmed workload suites.
 *
 * The paper evaluates 71 workloads: 21 quad-core (Q1–Q21), 16
 * eight-core (E1–E16), 20 sixteen-core (S1–S20) and 14 thirty-two
 * core (T1–T14) mixes. The exact compositions live in an
 * unavailable tech report, so this module rebuilds same-sized suites:
 * mixes the paper's text names explicitly (Q1, Q4–Q8, Q14, Q19, Q20)
 * are pinned to those compositions, the remainder are deterministic
 * seeded draws that keep every mix contentious (at least one
 * cache-friendly and one streaming/intensive program).
 */

#ifndef PRISM_WORKLOAD_SUITES_HH
#define PRISM_WORKLOAD_SUITES_HH

#include <string>
#include <vector>

namespace prism
{

/** One multi-programmed mix: benchmark i runs on core i. */
struct Workload
{
    std::string name;                    ///< e.g. "Q7"
    std::vector<std::string> benchmarks; ///< profile names, one per core
};

/** Named access to the four suites used throughout the evaluation. */
namespace suites
{

/** The 21 quad-core mixes Q1–Q21. */
std::vector<Workload> quadCore();

/** The 16 eight-core mixes E1–E16. */
std::vector<Workload> eightCore();

/** The 20 sixteen-core mixes S1–S20. */
std::vector<Workload> sixteenCore();

/** The 14 thirty-two-core mixes T1–T14. */
std::vector<Workload> thirtyTwoCore();

/** Suite for @p cores in {4, 8, 16, 32}; fatal() otherwise. */
std::vector<Workload> forCoreCount(unsigned cores);

/**
 * Look @p name up across all four suites (Q*, E*, S*, T*).
 * @return true and fill @p out when found; the core count is
 *         out.benchmarks.size().
 */
bool find(const std::string &name, Workload &out);

} // namespace suites

} // namespace prism

#endif // PRISM_WORKLOAD_SUITES_HH
