/**
 * @file
 * Trace-file access generator.
 *
 * Loads a block-address trace from a text file (one address per
 * line, decimal or 0x-prefixed hex; '#' starts a comment) and
 * replays it, looping at the end. This lets users drive the
 * simulator with real program traces (e.g. converted from
 * ChampSim/zsim dumps) instead of the synthetic profiles.
 *
 * Addresses are interpreted as *block* addresses (already divided by
 * the block size) and are tagged with the stream id so that traces
 * replayed on different cores never alias.
 */

#ifndef PRISM_WORKLOAD_TRACE_GENERATOR_HH
#define PRISM_WORKLOAD_TRACE_GENERATOR_HH

#include <string>
#include <vector>

#include "workload/generator.hh"

namespace prism
{

/** Replays a block-address trace file, looping at the end. */
class TraceFileGenerator : public AccessGenerator
{
  public:
    /**
     * @param path Trace file to load; fatal() on unreadable/empty.
     * @param stream_id Address-space tag (core index).
     */
    TraceFileGenerator(const std::string &path, std::uint32_t stream_id);

    /** Build directly from a list of block addresses (for tests). */
    TraceFileGenerator(std::vector<Addr> blocks,
                       std::uint32_t stream_id);

    Addr next() override;

    /** Number of records in the trace. */
    std::size_t size() const { return blocks_.size(); }

    /** Complete replays of the trace so far. */
    std::uint64_t loops() const { return loops_; }

  private:
    std::vector<Addr> blocks_;
    std::uint32_t stream_id_;
    std::size_t pos_ = 0;
    std::uint64_t loops_ = 0;
};

} // namespace prism

#endif // PRISM_WORKLOAD_TRACE_GENERATOR_HH
