#include "serve/tenant_arbiter.hh"

#include <algorithm>

#include "common/prism_assert.hh"

namespace prism::serve
{

std::uint64_t
TenantSnapshot::intervalMisses() const
{
    std::uint64_t total = 0;
    for (const std::uint64_t m : misses)
        total += m;
    return total;
}

double
TenantSnapshot::occupancyFraction(std::uint32_t tenant) const
{
    if (capacityBytes == 0)
        return 0.0;
    return static_cast<double>(occupancyBytes[tenant]) /
           static_cast<double>(capacityBytes);
}

double
TenantSnapshot::missFraction(std::uint32_t tenant) const
{
    const std::uint64_t total = intervalMisses();
    if (total == 0)
        return 0.0;
    return static_cast<double>(misses[tenant]) /
           static_cast<double>(total);
}

namespace
{

/**
 * Give every tenant @p floor, then distribute the remaining mass
 * proportionally to @p scores (uniformly when the scores are all
 * zero). Keeps the result a distribution for any non-negative
 * inputs; floors that would oversubscribe are scaled down first.
 */
std::vector<double>
floorsPlusProportional(std::vector<double> floors,
                       const std::vector<double> &scores)
{
    const std::size_t n = floors.size();
    double floor_sum = 0.0;
    for (const double f : floors)
        floor_sum += f;
    if (floor_sum > 1.0) {
        for (double &f : floors)
            f /= floor_sum;
        floor_sum = 1.0;
    }

    double score_sum = 0.0;
    for (const double s : scores)
        score_sum += s;

    const double spare = 1.0 - floor_sum;
    std::vector<double> targets(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double share =
            score_sum > 0.0 ? scores[i] / score_sum
                            : 1.0 / static_cast<double>(n);
        targets[i] = floors[i] + spare * share;
    }
    return targets;
}

/**
 * Hit-maximising targets: a tenant's claim grows with the reuse it
 * realised (hits) and the reuse it was denied (ghost-list shadow
 * hits, weighted up because each one is a miss an extra byte of
 * capacity would likely have converted). A small uniform floor keeps
 * idle tenants probeable so the loop can notice them warming up.
 */
class HitMaxPolicy final : public TenantTargetPolicy
{
  public:
    using TenantTargetPolicy::TenantTargetPolicy;

    std::string name() const override { return "HitMax"; }

    std::vector<double>
    computeTargets(const TenantSnapshot &snap) override
    {
        static constexpr double kShadowWeight = 4.0;
        const std::size_t n = snap.occupancyBytes.size();
        double floor = kMinTargetFrac;
        if (floor * static_cast<double>(n) > 1.0)
            floor = 1.0 / static_cast<double>(n);

        std::vector<double> scores(n);
        for (std::size_t i = 0; i < n; ++i)
            scores[i] =
                static_cast<double>(snap.hits[i]) +
                kShadowWeight *
                    static_cast<double>(snap.shadowHits[i]);
        return floorsPlusProportional(
            std::vector<double>(n, floor), scores);
    }

  private:
    static constexpr double kMinTargetFrac = 0.02;
};

/** Weighted fair share: targets proportional to QoS weights. */
class FairSharePolicy final : public TenantTargetPolicy
{
  public:
    using TenantTargetPolicy::TenantTargetPolicy;

    std::string name() const override { return "Fair"; }

    std::vector<double>
    computeTargets(const TenantSnapshot &snap) override
    {
        const std::size_t n = snap.occupancyBytes.size();
        std::vector<double> weights(n, 1.0);
        for (std::size_t i = 0; i < n && i < qos_.size(); ++i)
            weights[i] = std::max(0.0, qos_[i].weight);
        return floorsPlusProportional(std::vector<double>(n, 0.0),
                                      weights);
    }
};

/**
 * QoS floors: protected tenants (floorFrac > 0) are guaranteed their
 * capacity fraction; whatever remains is split by weight across all
 * tenants, so protected tenants can still grow past their floor when
 * the others leave capacity on the table.
 */
class QosFloorPolicy final : public TenantTargetPolicy
{
  public:
    using TenantTargetPolicy::TenantTargetPolicy;

    std::string name() const override { return "QoS"; }

    std::vector<double>
    computeTargets(const TenantSnapshot &snap) override
    {
        const std::size_t n = snap.occupancyBytes.size();
        std::vector<double> floors(n, 0.0);
        std::vector<double> weights(n, 1.0);
        for (std::size_t i = 0; i < n && i < qos_.size(); ++i) {
            floors[i] = std::max(0.0, qos_[i].floorFrac);
            weights[i] = std::max(0.0, qos_[i].weight);
        }
        return floorsPlusProportional(std::move(floors), weights);
    }
};

} // namespace

std::unique_ptr<TenantTargetPolicy>
makeTenantPolicy(char kind, std::vector<TenantQos> qos)
{
    switch (kind) {
      case 'H':
        return std::make_unique<HitMaxPolicy>(std::move(qos));
      case 'F':
        return std::make_unique<FairSharePolicy>(std::move(qos));
      case 'Q':
        return std::make_unique<QosFloorPolicy>(std::move(qos));
      default:
        return nullptr;
    }
}

TenantArbiter::TenantArbiter(
    std::uint32_t tenants,
    std::unique_ptr<TenantTargetPolicy> policy, std::uint64_t seed,
    Params params)
    : tenants_(tenants), policy_(std::move(policy)), params_(params),
      controller_(std::max<std::uint32_t>(1, tenants), seed)
{
    fatalIf(tenants_ == 0, "TenantArbiter: no tenants");
    fatalIf(!policy_, "TenantArbiter: null target policy");
}

void
TenantArbiter::recompute(const TenantSnapshot &snap)
{
    panicIf(snap.occupancyBytes.size() != tenants_,
            "TenantArbiter: snapshot tenant count mismatch");
    std::vector<double> targets = policy_->computeTargets(snap);

    std::vector<double> c(tenants_), m(tenants_);
    for (std::uint32_t i = 0; i < tenants_; ++i) {
        c[i] = snap.occupancyFraction(i);
        m[i] = snap.missFraction(i);
    }

    // The byte analogue of the paper's block counts: N objects of
    // average size fill the capacity, and the interval spanned the
    // realised number of misses (the final interval can run short).
    const std::uint64_t blocks_n =
        snap.capacityBytes / std::max<std::uint64_t>(
                                 1, snap.avgObjectBytes);
    const std::uint64_t interval_w = snap.intervalMisses();

    if (!controller_.beginRecompute())
        return; // dropped recompute: previous E serves the interval
    controller_.conditionInputs(c, m);
    controller_.commitRecompute(std::move(targets), c, m,
                                std::max<std::uint64_t>(1, blocks_n),
                                interval_w);
}

} // namespace prism::serve
