#include "serve/serve_engine.hh"

#include <algorithm>
#include <chrono>
#include <ostream>

#include "common/json.hh"
#include "common/prism_assert.hh"
#include "exec/thread_pool.hh"

namespace prism::serve
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Deterministic fill pattern so reads can verify round trips. */
void
makeValue(std::vector<std::uint8_t> &buf, const Request &req)
{
    buf.assign(req.valueBytes,
               static_cast<std::uint8_t>(Rng::mix64(
                   req.key ^ (0x5E12C0DEull + req.tenant))));
}

} // namespace

const char *
policyName(char kind)
{
    switch (kind) {
      case 'H':
        return "HitMax";
      case 'F':
        return "Fair";
      case 'Q':
        return "QoS";
      default:
        return "?";
    }
}

ServeEngine::ServeEngine(const ServeConfig &config) : config_(config)
{
    fatalIf(config_.tenants.empty(), "ServeEngine: no tenants");
    fatalIf(config_.streams == 0, "ServeEngine: no streams");
    fatalIf(config_.batch == 0, "ServeEngine: empty batch");
    fatalIf(config_.capacityBytes == 0, "ServeEngine: no capacity");
    fatalIf(!makeTenantPolicy(config_.policy, {}),
            "ServeEngine: unknown policy (use H, F or Q)");
}

ServeResult
ServeEngine::run()
{
    const auto tenants =
        static_cast<std::uint32_t>(config_.tenants.size());

    StoreConfig store_config;
    store_config.capacityBytes = config_.capacityBytes;
    store_config.shards = config_.shards;
    store_config.tenants = tenants;
    store_config.ghostPerTenant = config_.ghostPerTenant;
    ShardedStore store(store_config);

    LoadGen gen(config_.tenants, config_.streams, config_.seed);

    std::vector<TenantQos> qos(tenants);
    for (std::uint32_t t = 0; t < tenants; ++t) {
        qos[t].weight = config_.tenants[t].weight;
        qos[t].floorFrac = config_.tenants[t].floorFrac;
        qos[t].sloHitRatio = config_.tenants[t].sloHit;
    }
    TenantArbiter arbiter(
        tenants, makeTenantPolicy(config_.policy, std::move(qos)),
        deriveSeed(config_.seed, "tenant-arbiter"),
        TenantArbiter::Params{config_.intervalMisses});

    ThreadPool pool(config_.threads);

    ServeResult result;
    result.tenants.resize(tenants);
    result.recorder = std::make_shared<telemetry::IntervalRecorder>(
        std::max<std::size_t>(1, config_.recorderCapacity));
    result.metrics = std::make_shared<telemetry::MetricsRegistry>();

    // Per-tenant latency histograms: ~0.5us to ~1s in nanoseconds.
    std::vector<telemetry::Histogram *> latency(tenants, nullptr);
    if (config_.timing) {
        const std::vector<double> bounds =
            telemetry::Histogram::exponentialBounds(512.0, 2.0, 22);
        for (std::uint32_t t = 0; t < tenants; ++t)
            latency[t] = &result.metrics->histogram(
                "serve.latency_ns.t" + std::to_string(t), bounds);
    }

    // Mean spec size stands in for the measured mean until the
    // store holds objects (first interval of a cold run).
    std::uint64_t spec_mean_bytes = 0;
    for (const TenantSpec &spec : config_.tenants)
        spec_mean_bytes += (spec.vmin + spec.vmax) / 2;
    spec_mean_bytes =
        std::max<std::uint64_t>(1, spec_mean_bytes / tenants);

    // Round-pipeline scratch, reused every round.
    const std::uint32_t streams = config_.streams;
    std::vector<std::vector<Request>> per_stream(streams);
    for (auto &batch : per_stream)
        batch.resize(config_.batch);
    std::vector<std::uint32_t> stream_fill(streams, 0);
    std::vector<Request> merged;
    merged.reserve(static_cast<std::size_t>(streams) *
                   config_.batch);
    std::vector<std::vector<std::uint32_t>> by_shard(
        store.shardCount());

    // Interval state: counter snapshots taken at interval open.
    std::vector<std::uint64_t> base_hits(tenants, 0);
    std::vector<std::uint64_t> base_misses(tenants, 0);
    std::vector<std::uint64_t> base_shadow(tenants, 0);
    std::vector<std::uint64_t> interval_evictions(tenants, 0);
    std::uint64_t interval_idx = 0;

    const auto intervalMissCount = [&] {
        std::uint64_t total = 0;
        for (std::uint32_t t = 0; t < tenants; ++t)
            total += store.misses(t) - base_misses[t];
        return total;
    };

    // Live-plane observation state, refreshed from the sequential
    // sections only, so observers see thread-count-independent data.
    ServeLiveState live;
    live.tenants.resize(tenants);
    const auto fillLive = [&] {
        live.round = result.rounds;
        live.ops = result.ops;
        live.gets = result.gets;
        live.puts = result.puts;
        live.intervals = interval_idx;
        live.evictions = result.evictions;
        live.victimlessEvictions = result.victimlessEvictions;
        live.recomputes = arbiter.recomputes();
        live.eq1Fallbacks = arbiter.eq1Fallbacks();
        live.clampedEq1Inputs = arbiter.clampedInputs();
        live.occupancyBytes = store.totalBytes();
        live.objects = store.objectCount();
        live.droppedSamples = result.recorder->droppedSamples();
        live.droppedEvents = result.recorder->droppedEvents();
        for (std::uint32_t t = 0; t < tenants; ++t) {
            TenantTotals &tt = live.tenants[t];
            tt.hits = store.hits(t);
            tt.misses = store.misses(t);
            tt.shadowHits = store.shadowHits(t);
            tt.evictions = result.tenants[t].evictions;
            tt.occupancyBytes = store.tenantBytes(t);
        }
        live.targets = arbiter.targets();
        live.evProbs = arbiter.evictionProbs();
        live.recorder = result.recorder.get();
        live.metrics = result.metrics.get();
    };

    const auto closeInterval = [&](std::uint64_t misses_in_interval) {
        telemetry::IntervalSample sample;
        sample.interval = ++interval_idx;
        sample.missesInInterval = misses_in_interval;
        sample.occupancy.resize(tenants);
        sample.missFrac.resize(tenants);
        sample.hits.resize(tenants);
        sample.misses.resize(tenants);
        // The distribution *in effect during* the interval — not the
        // one the recompute below produces. This aligns each row
        // with the evictions it actually steered, which is what the
        // victim-match statistics need (docs/SERVING.md).
        sample.target = arbiter.targets();
        sample.evProb = arbiter.evictionProbs();

        TenantSnapshot snap;
        snap.capacityBytes = config_.capacityBytes;
        const std::uint64_t objects = store.objectCount();
        snap.avgObjectBytes =
            objects > 0 ? std::max<std::uint64_t>(
                              1, store.totalBytes() / objects)
                        : spec_mean_bytes;
        snap.occupancyBytes.resize(tenants);
        snap.hits.resize(tenants);
        snap.misses.resize(tenants);
        snap.shadowHits.resize(tenants);

        for (std::uint32_t t = 0; t < tenants; ++t) {
            const std::uint64_t bytes = store.tenantBytes(t);
            snap.occupancyBytes[t] = bytes;
            snap.hits[t] = store.hits(t) - base_hits[t];
            snap.misses[t] = store.misses(t) - base_misses[t];
            snap.shadowHits[t] =
                store.shadowHits(t) - base_shadow[t];

            sample.occupancy[t] =
                static_cast<double>(bytes) /
                static_cast<double>(config_.capacityBytes);
            sample.missFrac[t] =
                misses_in_interval
                    ? static_cast<double>(snap.misses[t]) /
                          static_cast<double>(misses_in_interval)
                    : 0.0;
            sample.hits[t] = snap.hits[t];
            sample.misses[t] = snap.misses[t];

            base_hits[t] += snap.hits[t];
            base_misses[t] += snap.misses[t];
            base_shadow[t] += snap.shadowHits[t];
        }
        result.recorder->record(std::move(sample));
        result.intervalEvictions.push_back(interval_evictions);
        std::fill(interval_evictions.begin(),
                  interval_evictions.end(), 0);

        arbiter.recompute(snap);

        if (config_.observer) {
            fillLive();
            // The recorded copy survives the move above; its row in
            // intervalEvictions is the one just pushed.
            config_.observer->onIntervalClosed(
                result.recorder->sample(result.recorder->size() -
                                        1),
                std::span<const std::uint64_t>(
                    result.intervalEvictions.back()),
                live);
        }
    };

    const bool budgeted = config_.opBudget > 0;
    const auto start = Clock::now();
    const auto deadline =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(config_.seconds));

    for (;;) {
        if (config_.stopFlag &&
            config_.stopFlag->load(std::memory_order_relaxed)) {
            result.stopped = true;
            break;
        }

        // --- round sizing ------------------------------------------
        if (budgeted) {
            const std::uint64_t remaining =
                config_.opBudget - result.ops;
            if (remaining == 0)
                break;
            const std::uint64_t round_ops = std::min<std::uint64_t>(
                remaining,
                static_cast<std::uint64_t>(streams) *
                    config_.batch);
            for (std::uint32_t s = 0; s < streams; ++s)
                stream_fill[s] = static_cast<std::uint32_t>(
                    round_ops / streams +
                    (s < round_ops % streams ? 1 : 0));
        } else {
            if (Clock::now() >= deadline)
                break;
            std::fill(stream_fill.begin(), stream_fill.end(),
                      config_.batch);
        }

        // --- (1) parallel per-stream batch fill --------------------
        for (std::uint32_t s = 0; s < streams; ++s) {
            if (stream_fill[s] == 0)
                continue;
            pool.submit([&gen, &per_stream, &stream_fill, s] {
                gen.fill(s, std::span<Request>(
                                per_stream[s].data(),
                                stream_fill[s]));
            });
        }
        pool.wait();

        // --- (2) deterministic round-robin merge -------------------
        merged.clear();
        for (std::uint32_t i = 0; i < config_.batch; ++i)
            for (std::uint32_t s = 0; s < streams; ++s)
                if (i < stream_fill[s])
                    merged.push_back(per_stream[s][i]);
        if (merged.empty())
            break;

        // --- (3) partition by shard, parallel apply ----------------
        for (auto &list : by_shard)
            list.clear();
        for (std::uint32_t i = 0;
             i < static_cast<std::uint32_t>(merged.size()); ++i) {
            const Request &req = merged[i];
            by_shard[store.shardOf(req.tenant, req.key)].push_back(
                i);
            if (req.isPut)
                ++result.puts;
            else
                ++result.gets;
        }

        for (const std::vector<std::uint32_t> &list : by_shard) {
            if (list.empty())
                continue;
            pool.submit([&store, &merged, &list, &latency,
                         timing = config_.timing] {
                std::vector<std::uint8_t> buf;
                for (const std::uint32_t idx : list) {
                    const Request &req = merged[idx];
                    const auto t0 =
                        timing ? Clock::now() : Clock::time_point();
                    if (req.isPut) {
                        makeValue(buf, req);
                        store.put(req.tenant, req.key, buf);
                    } else if (!store.get(req.tenant, req.key)
                                    .hit) {
                        // Read-through fill: a get miss fetches the
                        // object from the (modelled) backend.
                        makeValue(buf, req);
                        store.put(req.tenant, req.key, buf);
                    }
                    if (timing)
                        latency[req.tenant]->observe(
                            static_cast<double>(
                                std::chrono::nanoseconds(
                                    Clock::now() - t0)
                                    .count()));
                }
            });
        }
        pool.wait();
        result.ops += merged.size();
        ++result.rounds;

        // --- (4) sequential capacity eviction ----------------------
        while (store.totalBytes() > config_.capacityBytes) {
            std::uint32_t victim = arbiter.sampleVictimTenant();
            std::uint64_t freed = store.evictOneFrom(victim);
            if (freed == 0) {
                // Sampled tenant holds nothing here: charge the
                // fattest tenant instead (and count the miss-step).
                ++result.victimlessEvictions;
                std::uint32_t fattest = 0;
                for (std::uint32_t t = 1; t < tenants; ++t)
                    if (store.tenantBytes(t) >
                        store.tenantBytes(fattest))
                        fattest = t;
                victim = fattest;
                freed = store.evictOneFrom(victim);
                if (freed == 0)
                    break; // nothing anywhere to evict
            }
            ++result.evictions;
            ++interval_evictions[victim];
            ++result.tenants[victim].evictions;
        }

        // --- (5) control loop at the interval boundary -------------
        const std::uint64_t interval_misses = intervalMissCount();
        if (interval_misses >= config_.intervalMisses)
            closeInterval(interval_misses);

        if (config_.observer) {
            fillLive();
            config_.observer->onRoundEnd(live);
        }
    }

    // The final partial interval still carries signal — record it
    // (the simulator does the same for its last interval).
    const std::uint64_t tail_misses = intervalMissCount();
    if (tail_misses > 0)
        closeInterval(tail_misses);

    if (config_.timing)
        result.wallSeconds =
            std::chrono::duration<double>(Clock::now() - start)
                .count();

    result.intervals = interval_idx;
    result.recomputes = arbiter.recomputes();
    result.eq1Fallbacks = arbiter.eq1Fallbacks();
    result.clampedEq1Inputs = arbiter.clampedInputs();
    result.occupancyBytes = store.totalBytes();
    result.objects = store.objectCount();
    result.rehashes = store.rehashes();
    for (std::uint32_t t = 0; t < tenants; ++t) {
        result.tenants[t].hits = store.hits(t);
        result.tenants[t].misses = store.misses(t);
        result.tenants[t].shadowHits = store.shadowHits(t);
        result.tenants[t].occupancyBytes = store.tenantBytes(t);
    }

    if (config_.observer) {
        fillLive();
        config_.observer->onRunEnd(live);
    }
    return result;
}

void
writeServeJson(std::ostream &os, const ServeConfig &config,
               const ServeResult &result)
{
    JsonWriter w(os);
    w.beginObject();
    w.kv("schema", "prism-serve-v1");
    w.kv("policy", policyName(config.policy));

    w.key("config");
    w.beginObject();
    w.kv("capacity_bytes", config.capacityBytes);
    w.kv("shards", config.shards);
    w.kv("streams", config.streams);
    w.kv("batch", config.batch);
    w.kv("interval_misses", config.intervalMisses);
    w.kv("seed", config.seed);
    w.kv("op_budget", config.opBudget);
    w.key("tenants");
    w.beginArray();
    for (const TenantSpec &spec : config.tenants) {
        w.beginObject();
        w.kv("keys", spec.keys);
        w.kv("zipf", spec.zipf);
        w.kv("get_frac", spec.getFrac);
        w.kv("vmin", spec.vmin);
        w.kv("vmax", spec.vmax);
        w.kv("weight", spec.weight);
        w.kv("slo_hit", spec.sloHit);
        w.kv("floor", spec.floorFrac);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.key("totals");
    w.beginObject();
    w.kv("ops", result.ops);
    w.kv("gets", result.gets);
    w.kv("puts", result.puts);
    std::uint64_t hits = 0, misses = 0, shadow = 0;
    for (const TenantTotals &t : result.tenants) {
        hits += t.hits;
        misses += t.misses;
        shadow += t.shadowHits;
    }
    w.kv("hits", hits);
    w.kv("misses", misses);
    w.kv("shadow_hits", shadow);
    w.kv("evictions", result.evictions);
    w.kv("victimless_evictions", result.victimlessEvictions);
    w.kv("rounds", result.rounds);
    w.kv("intervals", result.intervals);
    w.kv("recomputes", result.recomputes);
    w.kv("eq1_fallbacks", result.eq1Fallbacks);
    w.kv("clamped_eq1_inputs", result.clampedEq1Inputs);
    w.kv("occupancy_bytes", result.occupancyBytes);
    w.kv("objects", result.objects);
    w.kv("rehashes", result.rehashes);
    w.endObject();

    w.key("tenants");
    w.beginArray();
    for (std::size_t t = 0; t < result.tenants.size(); ++t) {
        const TenantTotals &tt = result.tenants[t];
        w.beginObject();
        w.kv("tenant", static_cast<std::uint64_t>(t));
        w.kv("hits", tt.hits);
        w.kv("misses", tt.misses);
        w.kv("shadow_hits", tt.shadowHits);
        w.kv("evictions", tt.evictions);
        w.kv("occupancy_bytes", tt.occupancyBytes);
        const std::uint64_t accesses = tt.hits + tt.misses;
        w.kv("hit_ratio",
             accesses ? static_cast<double>(tt.hits) /
                            static_cast<double>(accesses)
                      : 0.0);
        w.kv("slo_hit", t < config.tenants.size()
                            ? config.tenants[t].sloHit
                            : 0.0);
        w.endObject();
    }
    w.endArray();

    // Interval series as parallel arrays, oldest retained first.
    // When the recorder ring wrapped, the eviction rows are trimmed
    // to the same retained window so every series stays aligned.
    const telemetry::IntervalRecorder &rec = *result.recorder;
    const std::size_t n = rec.size();
    const std::size_t ev_skip =
        result.intervalEvictions.size() > n
            ? result.intervalEvictions.size() - n
            : 0;

    w.key("intervals");
    w.beginObject();
    w.key("interval");
    w.beginArray();
    for (std::size_t i = 0; i < n; ++i)
        w.value(rec.sample(i).interval);
    w.endArray();
    w.key("misses_in_interval");
    w.beginArray();
    for (std::size_t i = 0; i < n; ++i)
        w.value(rec.sample(i).missesInInterval);
    w.endArray();

    const auto doubleRows =
        [&](const char *name,
            const std::vector<double> &(*row)(
                const telemetry::IntervalSample &)) {
            w.key(name);
            w.beginArray();
            for (std::size_t i = 0; i < n; ++i) {
                w.beginArray();
                for (const double v : row(rec.sample(i)))
                    w.value(v);
                w.endArray();
            }
            w.endArray();
        };
    doubleRows("occupancy",
               +[](const telemetry::IntervalSample &s)
                   -> const std::vector<double> & {
                   return s.occupancy;
               });
    doubleRows("target",
               +[](const telemetry::IntervalSample &s)
                   -> const std::vector<double> & {
                   return s.target;
               });
    doubleRows("ev_prob",
               +[](const telemetry::IntervalSample &s)
                   -> const std::vector<double> & {
                   return s.evProb;
               });
    doubleRows("miss_frac",
               +[](const telemetry::IntervalSample &s)
                   -> const std::vector<double> & {
                   return s.missFrac;
               });

    const auto u64Rows =
        [&](const char *name,
            const std::vector<std::uint64_t> &(*row)(
                const telemetry::IntervalSample &)) {
            w.key(name);
            w.beginArray();
            for (std::size_t i = 0; i < n; ++i) {
                w.beginArray();
                for (const std::uint64_t v : row(rec.sample(i)))
                    w.value(v);
                w.endArray();
            }
            w.endArray();
        };
    u64Rows("hits",
            +[](const telemetry::IntervalSample &s)
                -> const std::vector<std::uint64_t> & {
                return s.hits;
            });
    u64Rows("misses",
            +[](const telemetry::IntervalSample &s)
                -> const std::vector<std::uint64_t> & {
                return s.misses;
            });

    w.key("evictions");
    w.beginArray();
    for (std::size_t i = 0; i < n; ++i) {
        w.beginArray();
        if (ev_skip + i < result.intervalEvictions.size())
            for (const std::uint64_t v :
                 result.intervalEvictions[ev_skip + i])
                w.value(v);
        w.endArray();
    }
    w.endArray();
    w.endObject();

    w.key("telemetry");
    w.beginObject();
    w.kv("dropped_samples", rec.droppedSamples());
    w.kv("dropped_events", rec.droppedEvents());
    w.endObject();

    if (config.timing) {
        w.key("timing");
        w.beginObject();
        w.kv("threads", config.threads);
        w.kv("wall_seconds", result.wallSeconds);
        w.kv("ops_per_sec",
             result.wallSeconds > 0.0
                 ? static_cast<double>(result.ops) /
                       result.wallSeconds
                 : 0.0);
        w.key("latency_us");
        w.beginArray();
        for (std::size_t t = 0; t < result.tenants.size(); ++t) {
            w.beginObject();
            w.kv("tenant", static_cast<std::uint64_t>(t));
            const telemetry::Histogram *h =
                result.metrics
                    ? &const_cast<telemetry::MetricsRegistry &>(
                           *result.metrics)
                           .histogram("serve.latency_ns.t" +
                                          std::to_string(t),
                                      {})
                    : nullptr;
            const double scale = 1.0 / 1000.0;
            w.kv("p50", h ? h->quantile(0.50) * scale : 0.0);
            w.kv("p95", h ? h->quantile(0.95) * scale : 0.0);
            w.kv("p99", h ? h->quantile(0.99) * scale : 0.0);
            // Bucket bounds + counts so consumers can reconstruct
            // the distribution, not just read the quantiles.
            if (h) {
                std::vector<double> bounds_us(h->bounds());
                for (double &b : bounds_us)
                    b *= scale;
                w.kv("bounds_us",
                     std::span<const double>(bounds_us));
                std::vector<std::uint64_t> buckets(
                    h->numBuckets());
                for (std::size_t i = 0; i < buckets.size(); ++i)
                    buckets[i] = h->bucketCount(i);
                w.kv("buckets",
                     std::span<const std::uint64_t>(buckets));
                w.kv("count", h->count());
            }
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }

    w.endObject();
    os << '\n';
}

} // namespace prism::serve
