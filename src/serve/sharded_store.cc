#include "serve/sharded_store.hh"

#include <algorithm>
#include <bit>

#include "common/prism_assert.hh"

namespace prism::serve
{

namespace
{

std::uint64_t
ceilPow2(std::uint64_t v)
{
    return std::bit_ceil(std::max<std::uint64_t>(1, v));
}

} // namespace

void
ShardedStore::GhostList::push(std::uint64_t key,
                              std::uint32_t capacity)
{
    if (capacity == 0 || contains(key))
        return;
    if (ring.size() < capacity) {
        ring.push_back(key);
        ++size;
    } else {
        members.erase(ring[head]);
        ring[head] = key;
        head = (head + 1) % capacity;
    }
    members.insert(key);
}

void
ShardedStore::GhostList::erase(std::uint64_t key)
{
    if (members.erase(key) == 0)
        return;
    // The ring slot keeps the stale key; membership is what the
    // shadow-hit check consults, and the slot ages out FIFO anyway.
}

ShardedStore::ShardedStore(const StoreConfig &config)
    : capacity_bytes_(config.capacityBytes),
      tenants_(config.tenants),
      ghost_per_tenant_(config.ghostPerTenant)
{
    fatalIf(tenants_ == 0, "ShardedStore: no tenants");
    const auto num_shards = static_cast<std::uint32_t>(
        ceilPow2(std::max<std::uint32_t>(1, config.shards)));
    shard_shift_ =
        64u - static_cast<std::uint32_t>(
                  std::bit_width(num_shards) - 1);
    if (num_shards == 1)
        shard_shift_ = 63; // one shard; any bit goes to shard 0 only
                           // via the explicit mask below

    shards_ = std::vector<Shard>(num_shards);
    const auto slots = static_cast<std::size_t>(
        ceilPow2(std::max<std::uint32_t>(16, config.initialSlots)));
    for (Shard &shard : shards_) {
        shard.slots.resize(slots);
        shard.lruHead.assign(tenants_, kNil);
        shard.lruTail.assign(tenants_, kNil);
        shard.bytes.assign(tenants_, 0);
        shard.ghost.resize(tenants_);
    }

    tenant_bytes_ =
        std::make_unique<std::atomic<std::uint64_t>[]>(tenants_);
    hits_ = std::make_unique<std::atomic<std::uint64_t>[]>(tenants_);
    misses_ =
        std::make_unique<std::atomic<std::uint64_t>[]>(tenants_);
    shadow_hits_ =
        std::make_unique<std::atomic<std::uint64_t>[]>(tenants_);
    for (std::uint32_t t = 0; t < tenants_; ++t) {
        tenant_bytes_[t] = 0;
        hits_[t] = 0;
        misses_[t] = 0;
        shadow_hits_[t] = 0;
    }
    evict_cursor_.assign(tenants_, 0);
}

ShardedStore::~ShardedStore() = default;

std::uint32_t
ShardedStore::findSlot(const Shard &shard, std::uint32_t tenant,
                       std::uint64_t key, std::uint64_t hash) const
{
    const std::size_t mask = shard.slots.size() - 1;
    for (std::size_t i = hash & mask;;
         i = (i + 1) & mask) {
        const Slot &slot = shard.slots[i];
        if (slot.state == SlotState::Empty)
            return kNil;
        if (slot.state == SlotState::Full && slot.key == key &&
            slot.tenant == tenant)
            return static_cast<std::uint32_t>(i);
    }
}

void
ShardedStore::unlink(Shard &shard, std::uint32_t idx)
{
    Slot &slot = shard.slots[idx];
    const std::uint32_t t = slot.tenant;
    if (slot.prev != kNil)
        shard.slots[slot.prev].next = slot.next;
    else
        shard.lruHead[t] = slot.next;
    if (slot.next != kNil)
        shard.slots[slot.next].prev = slot.prev;
    else
        shard.lruTail[t] = slot.prev;
    slot.prev = slot.next = kNil;
}

void
ShardedStore::linkFront(Shard &shard, std::uint32_t idx)
{
    Slot &slot = shard.slots[idx];
    const std::uint32_t t = slot.tenant;
    slot.prev = kNil;
    slot.next = shard.lruHead[t];
    if (slot.next != kNil)
        shard.slots[slot.next].prev = idx;
    else
        shard.lruTail[t] = idx;
    shard.lruHead[t] = idx;
}

void
ShardedStore::growShard(Shard &shard)
{
    // Double when genuinely full; a rehash at the same size just
    // purges tombstones (deletes can dominate growth).
    const std::size_t old_size = shard.slots.size();
    const std::size_t new_size =
        shard.used * 2 >= old_size ? old_size * 2 : old_size;

    // Per-tenant MRU->LRU orders survive the move by reinsertion in
    // order: walk each old chain head to tail, move the slot into
    // the new table, and append to the rebuilt chain's tail.
    std::vector<Slot> old_slots(new_size);
    old_slots.swap(shard.slots);
    shard.filled = shard.used;

    const std::size_t mask = new_size - 1;
    for (std::uint32_t t = 0; t < tenants_; ++t) {
        std::uint32_t old_idx = shard.lruHead[t];
        shard.lruHead[t] = shard.lruTail[t] = kNil;
        while (old_idx != kNil) {
            Slot &old_slot = old_slots[old_idx];
            const std::uint32_t next_old = old_slot.next;

            std::size_t i =
                slotHash(old_slot.tenant, old_slot.key) & mask;
            while (shard.slots[i].state == SlotState::Full)
                i = (i + 1) & mask;
            Slot &dst = shard.slots[i];
            dst.key = old_slot.key;
            dst.tenant = old_slot.tenant;
            dst.state = SlotState::Full;
            dst.value = std::move(old_slot.value);
            dst.prev = shard.lruTail[t];
            dst.next = kNil;
            const auto new_idx = static_cast<std::uint32_t>(i);
            if (dst.prev != kNil)
                shard.slots[dst.prev].next = new_idx;
            else
                shard.lruHead[t] = new_idx;
            shard.lruTail[t] = new_idx;

            old_idx = next_old;
        }
    }
    rehashes_.fetch_add(1, std::memory_order_relaxed);
}

void
ShardedStore::insertLocked(Shard &shard, std::uint32_t tenant,
                           std::uint64_t key, std::uint64_t hash,
                           std::span<const std::uint8_t> value)
{
    // Keep the probe chains short: grow/compact at 70% occupied
    // (tombstones included — they lengthen probes like live slots).
    if ((shard.filled + 1) * 10 >= shard.slots.size() * 7)
        growShard(shard);

    const std::size_t mask = shard.slots.size() - 1;
    std::size_t target = SIZE_MAX;
    for (std::size_t i = hash & mask;; i = (i + 1) & mask) {
        Slot &slot = shard.slots[i];
        if (slot.state == SlotState::Empty) {
            if (target == SIZE_MAX) {
                target = i;
                ++shard.filled;
            }
            break;
        }
        if (slot.state == SlotState::Tombstone) {
            if (target == SIZE_MAX)
                target = i;
            continue;
        }
        if (slot.key == key && slot.tenant == tenant) {
            // Overwrite in place: adjust byte accounting and
            // refresh recency.
            const auto old_bytes =
                static_cast<std::uint64_t>(slot.value.size());
            const auto new_bytes =
                static_cast<std::uint64_t>(value.size());
            slot.value.assign(value.begin(), value.end());
            shard.bytes[tenant] += new_bytes - old_bytes;
            tenant_bytes_[tenant].fetch_add(
                new_bytes - old_bytes, std::memory_order_relaxed);
            total_bytes_.fetch_add(new_bytes - old_bytes,
                                   std::memory_order_relaxed);
            unlink(shard, static_cast<std::uint32_t>(i));
            linkFront(shard, static_cast<std::uint32_t>(i));
            return;
        }
    }

    Slot &slot = shard.slots[target];
    slot.key = key;
    slot.tenant = tenant;
    slot.state = SlotState::Full;
    slot.value.assign(value.begin(), value.end());
    ++shard.used;
    linkFront(shard, static_cast<std::uint32_t>(target));

    const auto bytes = static_cast<std::uint64_t>(value.size());
    shard.bytes[tenant] += bytes;
    tenant_bytes_[tenant].fetch_add(bytes,
                                    std::memory_order_relaxed);
    total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    objects_.fetch_add(1, std::memory_order_relaxed);

    // A key coming back to life stops being a ghost.
    shard.ghost[tenant].erase(key);
}

ShardedStore::GetResult
ShardedStore::get(std::uint32_t tenant, std::uint64_t key,
                  std::vector<std::uint8_t> *value_out)
{
    panicIf(tenant >= tenants_, "ShardedStore::get: bad tenant");
    const std::uint64_t hash = slotHash(tenant, key);
    Shard &shard = shards_[hash >> shard_shift_ &
                           (shards_.size() - 1)];

    GetResult result;
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        const std::uint32_t idx = findSlot(shard, tenant, key, hash);
        if (idx != kNil) {
            result.hit = true;
            unlink(shard, idx);
            linkFront(shard, idx);
            if (value_out)
                *value_out = shard.slots[idx].value;
        } else {
            result.shadowHit = shard.ghost[tenant].contains(key);
        }
    }

    if (result.hit) {
        hits_[tenant].fetch_add(1, std::memory_order_relaxed);
    } else {
        misses_[tenant].fetch_add(1, std::memory_order_relaxed);
        if (result.shadowHit)
            shadow_hits_[tenant].fetch_add(
                1, std::memory_order_relaxed);
    }
    return result;
}

void
ShardedStore::put(std::uint32_t tenant, std::uint64_t key,
                  std::span<const std::uint8_t> value)
{
    panicIf(tenant >= tenants_, "ShardedStore::put: bad tenant");
    const std::uint64_t hash = slotHash(tenant, key);
    Shard &shard = shards_[hash >> shard_shift_ &
                           (shards_.size() - 1)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    insertLocked(shard, tenant, key, hash, value);
}

std::uint64_t
ShardedStore::evictOneFrom(std::uint32_t tenant)
{
    panicIf(tenant >= tenants_,
            "ShardedStore::evictOneFrom: bad tenant");
    const std::size_t num_shards = shards_.size();
    std::uint32_t cursor = evict_cursor_[tenant];

    for (std::size_t attempt = 0; attempt < num_shards; ++attempt) {
        Shard &shard = shards_[cursor];
        const std::uint32_t next_cursor = static_cast<std::uint32_t>(
            (cursor + 1) & (num_shards - 1));
        std::lock_guard<std::mutex> lock(shard.mutex);
        const std::uint32_t tail = shard.lruTail[tenant];
        if (tail == kNil) {
            cursor = next_cursor;
            continue;
        }

        Slot &slot = shard.slots[tail];
        const auto bytes =
            static_cast<std::uint64_t>(slot.value.size());
        unlink(shard, tail);
        shard.ghost[tenant].push(slot.key, ghost_per_tenant_);
        slot.state = SlotState::Tombstone;
        slot.value.clear();
        slot.value.shrink_to_fit();
        --shard.used;

        shard.bytes[tenant] -= bytes;
        tenant_bytes_[tenant].fetch_sub(bytes,
                                        std::memory_order_relaxed);
        total_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
        objects_.fetch_sub(1, std::memory_order_relaxed);

        // Advance so successive evictions spread over shards instead
        // of draining one shard's list end to end.
        evict_cursor_[tenant] = next_cursor;
        return bytes;
    }
    evict_cursor_[tenant] = cursor;
    return 0;
}

} // namespace prism::serve
