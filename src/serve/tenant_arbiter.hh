/**
 * @file
 * PriSM interval control loop over *tenants* of a shared object
 * store.
 *
 * The paper manages per-core occupancy of a shared hardware cache;
 * the serving plane (docs/SERVING.md) transplants the same loop one
 * level up: tenants of a multi-tenant key-value store share one byte
 * budget, and every W misses the arbiter recomputes per-tenant
 * occupancy targets T_i and the Equation 1 eviction distribution
 * E_i. Each capacity eviction then samples a *victim tenant* from
 * E through the same O(1) AliasSampler the simulator's
 * Core-Selection uses, and the data plane evicts that tenant's LRU
 * object.
 *
 * The data plane is abstracted behind TenantPlane (occupancy query,
 * victim eviction, object statistics) so the arbiter and the target
 * policies never see hash tables or locks. TenantPlane is the
 * serving-store instantiation of the CachePlane substrate
 * (src/plane/cache_plane.hh, DESIGN.md): domains are tenants and
 * capacity counts bytes, and the arbiter is the thin adapter that
 * feeds byte-fraction observations into the one shared
 * PrismController — the exact control loop PrismScheme runs over
 * the simulated cache and WayMaskScheme runs over CAT-style way
 * masks.
 */

#ifndef PRISM_SERVE_TENANT_ARBITER_HH
#define PRISM_SERVE_TENANT_ARBITER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "plane/cache_plane.hh"
#include "plane/prism_controller.hh"

namespace prism::serve
{

/**
 * What the control loop may ask of the serving data plane: the
 * byte-unit CachePlane (domains = tenants) plus the store-specific
 * eviction primitive. Occupancy reads must be safe concurrently
 * with serving threads; evictOneFrom is called only from the
 * sequential eviction pass. The CachePlane half is satisfied by
 * adapters over the tenant-named accessors, so the diagnostics
 * layer can interrogate any backend uniformly.
 */
class TenantPlane : public CachePlane
{
  public:
    virtual std::uint32_t tenantCount() const = 0;

    /** Bytes of live values tenant @p tenant holds right now. */
    virtual std::uint64_t tenantBytes(std::uint32_t tenant) const = 0;

    /** Bytes of live values across all tenants. */
    virtual std::uint64_t totalBytes() const = 0;

    /** Live objects across all tenants. */
    virtual std::uint64_t objectCount() const = 0;

    /**
     * Evict @p tenant's least-recently-used object.
     * @return Bytes freed; 0 when the tenant holds nothing (the
     * caller then applies its victimless fallback).
     */
    virtual std::uint64_t evictOneFrom(std::uint32_t tenant) = 0;

    // --- CachePlane (domains = tenants, unit = bytes) ---
    const char *backendName() const override { return "store"; }
    CapacityUnit capacityUnit() const override
    {
        return CapacityUnit::Bytes;
    }
    std::uint32_t domainCount() const override
    {
        return tenantCount();
    }
    std::uint64_t occupancyUnits(std::uint32_t tenant) const override
    {
        return tenantBytes(tenant);
    }
};

/** Per-tenant quality-of-service inputs to the target policies. */
struct TenantQos
{
    /** Relative share weight (Fair policy). */
    double weight = 1.0;
    /** Guaranteed capacity fraction; 0 = unprotected (QoS policy). */
    double floorFrac = 0.0;
    /** Hit-ratio SLO floor the doctor checks; 0 = no SLO. */
    double sloHitRatio = 0.0;
};

/** One interval's observations, in bytes and raw counts. */
struct TenantSnapshot
{
    std::uint64_t capacityBytes = 0;
    /** Mean live-object size; the byte analogue of a cache block. */
    std::uint64_t avgObjectBytes = 1;

    // Per-tenant; all vectors share the tenant-count length.
    std::vector<std::uint64_t> occupancyBytes;
    std::vector<std::uint64_t> hits;       ///< this interval
    std::vector<std::uint64_t> misses;     ///< this interval
    std::vector<std::uint64_t> shadowHits; ///< ghost hits, interval

    /** Misses across all tenants this interval (the realised W). */
    std::uint64_t intervalMisses() const;

    double occupancyFraction(std::uint32_t tenant) const;
    double missFraction(std::uint32_t tenant) const;
};

/**
 * Maps one interval's snapshot to per-tenant occupancy targets
 * (fractions of capacity summing to 1) — the serving analogue of
 * PrismAllocPolicy.
 */
class TenantTargetPolicy
{
  public:
    explicit TenantTargetPolicy(std::vector<TenantQos> qos)
        : qos_(std::move(qos))
    {
    }
    virtual ~TenantTargetPolicy() = default;

    virtual std::string name() const = 0;
    virtual std::vector<double>
    computeTargets(const TenantSnapshot &snap) = 0;

  protected:
    std::vector<TenantQos> qos_;
};

/**
 * Build the policy selected by @p kind: 'H' hit-maximising (shadow
 * hits weigh reuse a tenant was denied), 'F' weighted fair share,
 * 'Q' QoS floors with weighted distribution of the remainder.
 */
std::unique_ptr<TenantTargetPolicy>
makeTenantPolicy(char kind, std::vector<TenantQos> qos);

/** Control-loop knobs for TenantArbiter. */
struct ArbiterParams
{
    /** Misses per allocation interval (the paper's W). */
    std::uint64_t intervalMisses = 16384;
};

/**
 * The serving-plane adapter onto the shared PrismController
 * (src/plane/): maps tenant byte observations into the controller's
 * targets → Equation 1 → sampler loop, exactly as PrismScheme maps
 * core block observations. No Equation 1 / alias-sampling /
 * fallback code lives here any more.
 */
class TenantArbiter : public ControllerHost
{
  public:
    using Params = ArbiterParams;

    TenantArbiter(std::uint32_t tenants,
                  std::unique_ptr<TenantTargetPolicy> policy,
                  std::uint64_t seed, Params params = Params());

    std::uint32_t tenantCount() const { return tenants_; }
    std::uint64_t intervalMisses() const
    {
        return params_.intervalMisses;
    }
    std::string policyName() const { return policy_->name(); }

    // --- ControllerHost ---
    PrismController &controller() override { return controller_; }
    const PrismController &controller() const override
    {
        return controller_;
    }

    /** Targets in effect (uniform before the first recompute). */
    const std::vector<double> &targets() const
    {
        return controller_.targets();
    }

    /** Eviction distribution in effect. */
    const std::vector<double> &evictionProbs() const
    {
        return controller_.evictionProbs();
    }

    /**
     * Draw the victim tenant for one capacity eviction: one uniform
     * through the O(1) alias table, stream-identical to the
     * inverse-CDF reference walk.
     */
    std::uint32_t
    sampleVictimTenant()
    {
        return controller_.sampleVictim();
    }

    /**
     * End-of-interval recompute: policy targets, then the
     * controller's Equation 1 over byte fractions with
     * N = capacity / avg-object-size and W = the interval's realised
     * miss count, then the sampler rebuild.
     */
    void recompute(const TenantSnapshot &snap);

    std::uint64_t recomputes() const
    {
        return controller_.recomputes();
    }
    std::uint64_t clampedInputs() const
    {
        return controller_.clampedInputs();
    }
    /** Equation 1 no-donor fallback activations (see eq1.hh). */
    std::uint64_t eq1Fallbacks() const
    {
        return controller_.eq1Fallbacks();
    }

  private:
    std::uint32_t tenants_;
    std::unique_ptr<TenantTargetPolicy> policy_;
    Params params_;
    PrismController controller_;
};

} // namespace prism::serve

#endif // PRISM_SERVE_TENANT_ARBITER_HH
