#include "serve/load_gen.hh"

#include <charconv>
#include <cstdlib>

#include "common/prism_assert.hh"

namespace prism::serve
{

namespace
{

bool
parseU64(std::string_view text, std::uint64_t &out)
{
    const char *end = text.data() + text.size();
    const auto [ptr, ec] =
        std::from_chars(text.data(), end, out);
    return ec == std::errc() && ptr == end;
}

bool
parseDouble(std::string_view text, double &out)
{
    const std::string buf(text);
    char *end = nullptr;
    out = std::strtod(buf.c_str(), &end);
    return end == buf.c_str() + buf.size() && !buf.empty();
}

} // namespace

Status
parseTenantSpec(std::string_view text, TenantSpec &out)
{
    while (!text.empty()) {
        const std::size_t comma = text.find(',');
        const std::string_view field =
            comma == std::string_view::npos ? text
                                            : text.substr(0, comma);
        text = comma == std::string_view::npos
                   ? std::string_view()
                   : text.substr(comma + 1);
        if (field.empty())
            continue;

        const std::size_t eq = field.find('=');
        if (eq == std::string_view::npos)
            return Status::error("tenant spec field '" +
                                 std::string(field) +
                                 "' is not key=value");
        const std::string_view key = field.substr(0, eq);
        const std::string_view value = field.substr(eq + 1);

        bool ok = true;
        if (key == "keys")
            ok = parseU64(value, out.keys) && out.keys > 0;
        else if (key == "zipf")
            ok = parseDouble(value, out.zipf) && out.zipf >= 0.0;
        else if (key == "get")
            ok = parseDouble(value, out.getFrac) &&
                 out.getFrac >= 0.0 && out.getFrac <= 1.0;
        else if (key == "vmin") {
            std::uint64_t v = 0;
            ok = parseU64(value, v) && v > 0 && v <= 0xFFFFFFFFull;
            out.vmin = static_cast<std::uint32_t>(v);
        } else if (key == "vmax") {
            std::uint64_t v = 0;
            ok = parseU64(value, v) && v > 0 && v <= 0xFFFFFFFFull;
            out.vmax = static_cast<std::uint32_t>(v);
        } else if (key == "weight")
            ok = parseDouble(value, out.weight) && out.weight >= 0.0;
        else if (key == "slo-hit")
            ok = parseDouble(value, out.sloHit) &&
                 out.sloHit >= 0.0 && out.sloHit <= 1.0;
        else if (key == "floor")
            ok = parseDouble(value, out.floorFrac) &&
                 out.floorFrac >= 0.0 && out.floorFrac < 1.0;
        else
            return Status::error("unknown tenant spec key '" +
                                 std::string(key) + "'");
        if (!ok)
            return Status::error("bad tenant spec value '" +
                                 std::string(field) + "'");
    }
    if (out.vmin > out.vmax)
        return Status::error("tenant spec has vmin > vmax");
    return Status();
}

LoadGen::LoadGen(std::vector<TenantSpec> specs,
                 std::uint32_t streams, std::uint64_t seed)
    : specs_(std::move(specs))
{
    fatalIf(specs_.empty(), "LoadGen: no tenants");
    fatalIf(streams == 0, "LoadGen: no streams");
    zipf_.reserve(specs_.size());
    for (const TenantSpec &spec : specs_)
        zipf_.emplace_back(spec.keys, spec.zipf);
    rngs_.reserve(streams);
    for (std::uint32_t s = 0; s < streams; ++s)
        rngs_.emplace_back(deriveSeed(seed, 0x57AE0000ull + s));
    value_salt_ = deriveSeed(seed, "value-size");
}

std::uint32_t
LoadGen::valueBytes(std::uint32_t tenant, std::uint64_t key) const
{
    const TenantSpec &spec = specs_[tenant];
    const std::uint64_t span = spec.vmax - spec.vmin + 1;
    const std::uint64_t h = Rng::mix64(
        value_salt_ ^ Rng::mix64(key + 0x9E3779B97F4A7C15ULL *
                                           (tenant + 1)));
    return spec.vmin + static_cast<std::uint32_t>(h % span);
}

void
LoadGen::fill(std::uint32_t stream, std::span<Request> batch)
{
    Rng &rng = rngs_[stream];
    const auto tenants =
        static_cast<std::uint32_t>(specs_.size());
    for (Request &req : batch) {
        req.tenant =
            tenants == 1
                ? 0
                : static_cast<std::uint32_t>(rng.below(tenants));
        req.key = zipf_[req.tenant].next(rng);
        req.isPut = !rng.chance(specs_[req.tenant].getFrac);
        req.valueBytes = valueBytes(req.tenant, req.key);
    }
}

} // namespace prism::serve
