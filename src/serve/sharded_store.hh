/**
 * @file
 * Sharded in-memory object store: the serving data plane.
 *
 * A key-value store split into N lock-striped shards. Each shard is
 * an open-addressing hash table (linear probing, tombstones,
 * power-of-two slots) whose slots double as nodes of per-tenant
 * intrusive LRU lists, so recency is tracked per tenant per shard
 * with zero extra allocation. Byte-level accounting — per-shard
 * per-tenant exact counters plus store-wide relaxed atomics — gives
 * the arbiter the occupancy view Equation 1 needs without stopping
 * the world.
 *
 * Each shard additionally keeps a per-tenant *ghost list* (a bounded
 * FIFO of recently evicted keys): a miss whose key is still in the
 * ghost list is a "shadow hit" — a hit the tenant would have had
 * with more capacity — which is exactly the demand signal the
 * hit-maximising target policy feeds on (the serving analogue of the
 * paper's shadow tags).
 *
 * Concurrency contract: get/put are thread-safe (per-shard mutex;
 * the TSan hammer test exercises this), occupancy reads are
 * lock-free, and evictOneFrom is called only from the engine's
 * sequential eviction pass. Determinism: identical operation
 * sequences per shard produce identical state at any thread count —
 * nothing in a shard depends on global order, only on its own.
 */

#ifndef PRISM_SERVE_SHARDED_STORE_HH
#define PRISM_SERVE_SHARDED_STORE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_set>
#include <vector>

#include "common/rng.hh"
#include "serve/tenant_arbiter.hh"

namespace prism::serve
{

/** Sizing knobs for the store. */
struct StoreConfig
{
    std::uint64_t capacityBytes = 64ull << 20;
    /** Lock stripes; rounded up to a power of two. */
    std::uint32_t shards = 64;
    std::uint32_t tenants = 1;
    /** Ghost-list keys retained per tenant per shard. */
    std::uint32_t ghostPerTenant = 1024;
    /** Initial hash-table slots per shard (power of two). */
    std::uint32_t initialSlots = 1024;
};

/** The sharded object store; implements the arbiter's TenantPlane. */
class ShardedStore final : public TenantPlane
{
  public:
    explicit ShardedStore(const StoreConfig &config);
    ~ShardedStore() override;

    ShardedStore(const ShardedStore &) = delete;
    ShardedStore &operator=(const ShardedStore &) = delete;

    struct GetResult
    {
        bool hit = false;
        /** Miss whose key was still on the tenant's ghost list. */
        bool shadowHit = false;
    };

    /**
     * Look @p key up for @p tenant. A hit refreshes the object's
     * per-tenant LRU position and, when @p value_out is non-null,
     * copies the value bytes out. A miss checks the ghost list and
     * bumps the tenant's hit/miss/shadow counters accordingly.
     */
    GetResult get(std::uint32_t tenant, std::uint64_t key,
                  std::vector<std::uint8_t> *value_out = nullptr);

    /**
     * Insert or overwrite @p key for @p tenant with @p value bytes.
     * The object becomes the tenant's most recently used; a key
     * resurrected from the ghost list is dropped from it. Never
     * evicts — capacity is enforced by the engine's eviction pass.
     */
    void put(std::uint32_t tenant, std::uint64_t key,
             std::span<const std::uint8_t> value);

    /** Shard @p key routes to (for the engine's batch partition). */
    std::uint32_t
    shardOf(std::uint32_t tenant, std::uint64_t key) const
    {
        return static_cast<std::uint32_t>(
            slotHash(tenant, key) >> shard_shift_ &
            (shards_.size() - 1));
    }

    std::uint32_t shardCount() const
    {
        return static_cast<std::uint32_t>(shards_.size());
    }
    std::uint64_t capacityBytes() const { return capacity_bytes_; }

    // --- TenantPlane ------------------------------------------------
    std::uint32_t tenantCount() const override { return tenants_; }
    std::uint64_t tenantBytes(std::uint32_t tenant) const override
    {
        return tenant_bytes_[tenant].load(std::memory_order_relaxed);
    }
    std::uint64_t totalBytes() const override
    {
        return total_bytes_.load(std::memory_order_relaxed);
    }
    std::uint64_t objectCount() const override
    {
        return objects_.load(std::memory_order_relaxed);
    }
    std::uint64_t evictOneFrom(std::uint32_t tenant) override;

    // --- CachePlane (via TenantPlane) -------------------------------
    std::uint64_t capacityUnits() const override
    {
        return capacity_bytes_;
    }
    double standAloneHits(std::uint32_t tenant) const override
    {
        return static_cast<double>(shadowHits(tenant));
    }

    // --- per-tenant access statistics (monotonic) -------------------
    std::uint64_t hits(std::uint32_t tenant) const
    {
        return hits_[tenant].load(std::memory_order_relaxed);
    }
    std::uint64_t misses(std::uint32_t tenant) const
    {
        return misses_[tenant].load(std::memory_order_relaxed);
    }
    std::uint64_t shadowHits(std::uint32_t tenant) const
    {
        return shadow_hits_[tenant].load(std::memory_order_relaxed);
    }

    /** Hash-table growth/compaction events across all shards. */
    std::uint64_t rehashes() const
    {
        return rehashes_.load(std::memory_order_relaxed);
    }

  private:
    static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

    enum class SlotState : std::uint8_t { Empty, Full, Tombstone };

    struct Slot
    {
        std::uint64_t key = 0;
        std::uint32_t tenant = 0;
        SlotState state = SlotState::Empty;
        /** Per-tenant LRU links (slot indices within the shard). */
        std::uint32_t prev = kNil;
        std::uint32_t next = kNil;
        std::vector<std::uint8_t> value;
    };

    /** Bounded FIFO of evicted keys with O(1) membership. */
    struct GhostList
    {
        std::vector<std::uint64_t> ring;
        std::uint32_t head = 0; ///< next overwrite position
        std::uint32_t size = 0;
        std::unordered_set<std::uint64_t> members;

        void push(std::uint64_t key, std::uint32_t capacity);
        bool contains(std::uint64_t key) const
        {
            return members.count(key) != 0;
        }
        void erase(std::uint64_t key);
    };

    struct Shard
    {
        mutable std::mutex mutex;
        std::vector<Slot> slots; ///< power-of-two size
        std::size_t used = 0;    ///< Full slots
        std::size_t filled = 0;  ///< Full + Tombstone slots
        // Per-tenant state, indexed by tenant id.
        std::vector<std::uint32_t> lruHead; ///< MRU end
        std::vector<std::uint32_t> lruTail; ///< LRU end
        std::vector<std::uint64_t> bytes;
        std::vector<GhostList> ghost;
    };

    static std::uint64_t
    slotHash(std::uint32_t tenant, std::uint64_t key)
    {
        return Rng::mix64(key ^ Rng::mix64(0x7E9A9C1B2D3E4F50ULL +
                                           tenant));
    }

    /** Find @p key's Full slot; kNil when absent. */
    std::uint32_t findSlot(const Shard &shard, std::uint32_t tenant,
                           std::uint64_t key,
                           std::uint64_t hash) const;

    void unlink(Shard &shard, std::uint32_t idx);
    void linkFront(Shard &shard, std::uint32_t idx);
    void growShard(Shard &shard);
    void insertLocked(Shard &shard, std::uint32_t tenant,
                      std::uint64_t key, std::uint64_t hash,
                      std::span<const std::uint8_t> value);

    std::uint64_t capacity_bytes_;
    std::uint32_t tenants_;
    std::uint32_t ghost_per_tenant_;
    std::uint32_t shard_shift_; ///< 64 - log2(shards)

    std::vector<Shard> shards_;

    // Store-wide accounting (relaxed; exact because every update
    // happens under some shard lock and readers tolerate staleness
    // of in-flight operations).
    std::unique_ptr<std::atomic<std::uint64_t>[]> tenant_bytes_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> hits_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> misses_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> shadow_hits_;
    std::atomic<std::uint64_t> total_bytes_{0};
    std::atomic<std::uint64_t> objects_{0};
    std::atomic<std::uint64_t> rehashes_{0};

    /** Per-tenant round-robin shard cursor for evictOneFrom (only
     *  touched by the sequential eviction pass). */
    std::vector<std::uint32_t> evict_cursor_;
};

} // namespace prism::serve

#endif // PRISM_SERVE_SHARDED_STORE_HH
