/**
 * @file
 * Serving-layer alias of the shared Zipf sampler.
 *
 * The rejection-inversion rank sampler the load generator draws key
 * popularity from lives in common/zipf.hh, shared with the
 * simulator's trace-generator power law. This header keeps the
 * historical prism::serve::ZipfGenerator spelling alive for the
 * serving layer; the type (and therefore every draw stream) is
 * exactly the shared one.
 */

#ifndef PRISM_SERVE_ZIPF_HH
#define PRISM_SERVE_ZIPF_HH

#include "common/zipf.hh"

namespace prism::serve
{

using ZipfGenerator = prism::ZipfGenerator;

} // namespace prism::serve

#endif // PRISM_SERVE_ZIPF_HH
