/**
 * @file
 * Closed-loop load generation for prism_serve.
 *
 * Requests are produced by a fixed number of logical *streams*,
 * deliberately decoupled from the worker-thread count: stream s
 * draws its whole request sequence from Rng(deriveSeed(seed, s)),
 * so the generated load — and therefore every deterministic output
 * of the engine — is byte-identical whether 1 or 64 threads execute
 * the streams. Worker threads are merely the machinery that fills
 * stream batches in parallel (docs/SERVING.md, "Determinism").
 *
 * Each tenant gets a Zipfian keyspace plus a value-size range;
 * value sizes are a pure function of (tenant, key), never of the
 * request sequence, so an object's size is identical no matter
 * which stream or round (re)inserts it.
 */

#ifndef PRISM_SERVE_LOAD_GEN_HH
#define PRISM_SERVE_LOAD_GEN_HH

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hh"
#include "common/status.hh"
#include "serve/zipf.hh"

namespace prism::serve
{

/** One tenant's workload shape and service terms. */
struct TenantSpec
{
    /** Keyspace size. */
    std::uint64_t keys = 300000;
    /** Zipf exponent of key popularity. */
    double zipf = 0.99;
    /** Fraction of requests that are gets (rest are puts). */
    double getFrac = 0.95;
    /** Value-size range in bytes, inclusive. */
    std::uint32_t vmin = 64;
    std::uint32_t vmax = 256;
    /** Fair-share weight (Fair/QoS policies). */
    double weight = 1.0;
    /** Hit-ratio SLO floor the doctor checks; 0 disables. */
    double sloHit = 0.02;
    /** Guaranteed capacity fraction (QoS policy); 0 = none. */
    double floorFrac = 0.0;
};

/**
 * Parse a `key=value[,key=value...]` tenant spec. Keys: keys, zipf,
 * get, vmin, vmax, weight, slo-hit, floor. Unset keys keep the
 * defaults of @p out as passed in, so a base spec can be refined.
 */
Status parseTenantSpec(std::string_view text, TenantSpec &out);

/** One generated request. */
struct Request
{
    std::uint32_t tenant = 0;
    std::uint64_t key = 0;
    /** Size of the object (puts write it; get misses fill it). */
    std::uint32_t valueBytes = 0;
    bool isPut = false;
};

/** Fixed-stream deterministic request generator. */
class LoadGen
{
  public:
    LoadGen(std::vector<TenantSpec> specs, std::uint32_t streams,
            std::uint64_t seed);

    std::uint32_t streamCount() const
    {
        return static_cast<std::uint32_t>(rngs_.size());
    }
    std::uint32_t tenantCount() const
    {
        return static_cast<std::uint32_t>(specs_.size());
    }
    const std::vector<TenantSpec> &specs() const { return specs_; }

    /**
     * Fill @p batch with stream @p stream's next requests. Streams
     * are independent: concurrent fills of *different* streams are
     * safe; a single stream must be filled by one thread at a time.
     */
    void fill(std::uint32_t stream, std::span<Request> batch);

    /** The value size of (tenant, key): pure, sequence-independent. */
    std::uint32_t valueBytes(std::uint32_t tenant,
                             std::uint64_t key) const;

  private:
    std::vector<TenantSpec> specs_;
    std::vector<ZipfGenerator> zipf_; ///< per tenant, immutable
    std::vector<Rng> rngs_;           ///< per stream
    std::uint64_t value_salt_;
};

} // namespace prism::serve

#endif // PRISM_SERVE_LOAD_GEN_HH
