/**
 * @file
 * The serving engine: closed-loop load through the sharded store
 * under the PriSM tenant arbiter, with deterministic output.
 *
 * Execution is round-based. Each round: (1) every logical stream
 * fills one request batch (streams fan out over the worker pool),
 * (2) the batches are merged in a fixed round-robin interleave,
 * (3) the merged sequence is partitioned by shard and each shard's
 * slice is applied in merged order (shards fan out over the pool),
 * (4) after the barrier one sequential pass evicts — sampling the
 * victim tenant from the arbiter's Equation 1 distribution — until
 * occupancy fits the byte budget, and (5) once the interval's miss
 * quota W is met, the control loop records the interval and
 * recomputes targets and distribution.
 *
 * Because streams (not threads) own the RNGs, the merge order is a
 * pure function of batch shape, shard routing is a pure function of
 * keys, per-shard application order follows the merge order, and
 * eviction + control run sequentially, every deterministic output
 * is byte-identical at any `--threads` for a fixed op budget. Wall
 *-clock metrics (latency histograms, throughput) are collected only
 * when timing is on and live in the JSON "timing" section, which —
 * like ".wall_ns" counters elsewhere — is excluded from the
 * deterministic document (docs/SERVING.md).
 */

#ifndef PRISM_SERVE_SERVE_ENGINE_HH
#define PRISM_SERVE_SERVE_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "serve/load_gen.hh"
#include "serve/sharded_store.hh"
#include "serve/tenant_arbiter.hh"
#include "telemetry/interval_recorder.hh"
#include "telemetry/metrics_registry.hh"

namespace prism::serve
{

class ServeObserver;

/** Long name of a target policy kind ('H' -> "HitMax", ...). */
const char *policyName(char kind);

/** Everything a serve run needs to know. */
struct ServeConfig
{
    std::vector<TenantSpec> tenants;

    std::uint32_t threads = 1;
    /** Logical request streams (fixed; independent of threads). */
    std::uint32_t streams = 16;
    std::uint32_t shards = 64;
    /** Requests per stream per round. */
    std::uint32_t batch = 2048;

    std::uint64_t capacityBytes = 64ull << 20;
    /** The paper's W, in get misses. */
    std::uint64_t intervalMisses = 16384;
    /** Target policy: 'H', 'F' or 'Q'. */
    char policy = 'H';
    std::uint64_t seed = 42;

    /** Total requests; 0 = run by wall clock instead. */
    std::uint64_t opBudget = 0;
    /** Wall-clock run length when opBudget == 0. */
    double seconds = 5.0;

    /** Collect wall-clock latency/throughput (non-deterministic). */
    bool timing = true;
    /** Interval-recorder ring capacity. */
    std::size_t recorderCapacity = 4096;
    /** Ghost-list keys per tenant per shard. */
    std::uint32_t ghostPerTenant = 1024;

    /**
     * Live-plane hooks, invoked from the engine's sequential
     * sections only (docs/OBSERVABILITY.md). Non-owning; null = no
     * observation.
     */
    ServeObserver *observer = nullptr;

    /**
     * Cooperative stop flag (the shared SIGINT/SIGTERM handler,
     * common/stop_signal.hh). Polled at every round boundary; a
     * raised flag ends the run after the usual tail-interval close,
     * so the final document and metrics snapshot still get written.
     * Non-owning; null = never stops early.
     */
    const std::atomic<bool> *stopFlag = nullptr;
};

/** Final per-tenant totals. */
struct TenantTotals
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t shadowHits = 0;
    std::uint64_t evictions = 0;
    std::uint64_t occupancyBytes = 0;
};

/**
 * Cumulative engine state at an observation point, assembled in the
 * sequential part of the round pipeline — every field is a pure
 * function of the op sequence, so observers see byte-identical
 * state at any --threads value.
 */
struct ServeLiveState
{
    std::uint64_t round = 0; ///< rounds completed (snapshot key)
    std::uint64_t ops = 0;
    std::uint64_t gets = 0;
    std::uint64_t puts = 0;
    std::uint64_t intervals = 0; ///< intervals closed so far

    std::uint64_t evictions = 0;
    std::uint64_t victimlessEvictions = 0;
    std::uint64_t recomputes = 0;
    std::uint64_t eq1Fallbacks = 0;
    std::uint64_t clampedEq1Inputs = 0;

    std::uint64_t occupancyBytes = 0;
    std::uint64_t objects = 0;

    std::uint64_t droppedSamples = 0;
    std::uint64_t droppedEvents = 0;

    /** Whole-run cumulative totals per tenant. */
    std::vector<TenantTotals> tenants;

    /** Targets / eviction probabilities currently in effect. */
    std::vector<double> targets;
    std::vector<double> evProbs;

    /** The run's recorder (live observers may append events). */
    telemetry::IntervalRecorder *recorder = nullptr;

    /** The run's registry (latency histograms on timing runs). */
    const telemetry::MetricsRegistry *metrics = nullptr;
};

/**
 * Hooks into the serve round pipeline. All callbacks fire on the
 * engine thread inside the sequential eviction/control sections —
 * implementations need no locking, may append telemetry events via
 * state.recorder, and must not block.
 */
class ServeObserver
{
  public:
    virtual ~ServeObserver() = default;

    /**
     * An allocation interval closed (after the arbiter recompute, so
     * @p state carries the *next* distribution while @p sample holds
     * the one in effect during the interval). @p evictions is the
     * closed interval's per-tenant eviction row.
     */
    virtual void
    onIntervalClosed(const telemetry::IntervalSample &sample,
                     std::span<const std::uint64_t> evictions,
                     const ServeLiveState &state) = 0;

    /** A round finished (after eviction + interval close). */
    virtual void onRoundEnd(const ServeLiveState &state) = 0;

    /** The run ended; @p state is final (tail interval included). */
    virtual void onRunEnd(const ServeLiveState &state) { (void)state; }
};

/** The outcome of one serve run. */
struct ServeResult
{
    std::vector<TenantTotals> tenants;

    std::uint64_t ops = 0;
    std::uint64_t gets = 0;
    std::uint64_t puts = 0;
    std::uint64_t rounds = 0;
    std::uint64_t intervals = 0;

    std::uint64_t evictions = 0;
    /** Sampled tenant held nothing; max-occupancy tenant evicted. */
    std::uint64_t victimlessEvictions = 0;

    std::uint64_t recomputes = 0;
    std::uint64_t eq1Fallbacks = 0;
    std::uint64_t clampedEq1Inputs = 0;

    std::uint64_t occupancyBytes = 0;
    std::uint64_t objects = 0;
    std::uint64_t rehashes = 0;

    /** Per-interval per-tenant evictions, parallel to the recorded
     *  interval samples (same truncation when the ring wraps). */
    std::vector<std::vector<std::uint64_t>> intervalEvictions;

    /** Recorded interval series {C, T, E, M, hits, misses}. */
    std::shared_ptr<telemetry::IntervalRecorder> recorder;

    /** Per-tenant latency histograms etc. (timing runs only). */
    std::shared_ptr<telemetry::MetricsRegistry> metrics;

    /** Wall-clock seconds spent serving; 0 without timing. */
    double wallSeconds = 0.0;

    /** The run ended early on the cooperative stop flag. */
    bool stopped = false;
};

/** Runs one configured serve session. */
class ServeEngine
{
  public:
    explicit ServeEngine(const ServeConfig &config);

    ServeResult run();

  private:
    ServeConfig config_;
};

/**
 * Serialise @p result as a `prism-serve-v1` document. The document
 * is byte-deterministic for a fixed op budget; the non-deterministic
 * "timing" section is appended only when the run collected timing.
 */
void writeServeJson(std::ostream &os, const ServeConfig &config,
                    const ServeResult &result);

} // namespace prism::serve

#endif // PRISM_SERVE_SERVE_ENGINE_HH
